#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/dataflow.h"
#include "analysis/pass.h"
#include "core/cost/sparsity.h"
#include "core/format/format.h"
#include "core/fusion/fusion.h"

namespace matopt {

namespace {

/// "'W2n' (v14)" when the vertex is named, "v14" otherwise — every
/// diagnostic names the offending vertex so CLI output is actionable.
std::string VertexLabel(const ComputeGraph& graph, int v) {
  const Vertex& vx = graph.vertex(v);
  if (vx.name.empty()) return "v" + std::to_string(v);
  return "'" + vx.name + "' (v" + std::to_string(v) + ")";
}

std::string FormatName(FormatId id) {
  const auto& formats = BuiltinFormats();
  if (id < 0 || id >= static_cast<FormatId>(formats.size())) {
    return "<invalid format " + std::to_string(id) + ">";
  }
  return formats[id].ToString();
}

/// True when the vertex's argument list is structurally sound (arity and
/// id range/order). Later passes use this to skip vertices the hygiene
/// pass has already reported.
bool VertexStructureOk(const ComputeGraph& graph, int v) {
  const Vertex& vx = graph.vertex(v);
  if (vx.op == OpKind::kInput) return vx.inputs.empty();
  if (static_cast<int>(vx.inputs.size()) != OpArity(vx.op)) return false;
  for (int in : vx.inputs) {
    if (in < 0 || in >= v) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pass 4 (runs first): dead vertices, unused inputs, broken topology.
// Structure errors from this pass gate the rest of the pipeline.

class GraphHygienePass : public AnalysisPass {
 public:
  const char* name() const override { return "graph-hygiene"; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const ComputeGraph& graph = ctx.graph;
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (vx.op == OpKind::kInput) {
        if (!vx.inputs.empty()) {
          out->Add(Severity::kError, RuleId::kMO002_MalformedVertex,
                   "input vertex " + VertexLabel(graph, v) +
                       " has argument edges",
                   v);
        }
        continue;
      }
      if (static_cast<int>(vx.inputs.size()) != OpArity(vx.op)) {
        out->Add(Severity::kError, RuleId::kMO002_MalformedVertex,
                 std::string(OpKindName(vx.op)) + " vertex " +
                     VertexLabel(graph, v) + " has " +
                     std::to_string(vx.inputs.size()) + " arguments, expects " +
                     std::to_string(OpArity(vx.op)),
                 v);
      }
      for (size_t j = 0; j < vx.inputs.size(); ++j) {
        int in = vx.inputs[j];
        if (in < 0 || in >= graph.num_vertices()) {
          out->Add(Severity::kError, RuleId::kMO032_OrderViolation,
                   "vertex " + VertexLabel(graph, v) +
                       " references nonexistent vertex v" + std::to_string(in),
                   v, static_cast<int>(j));
        } else if (in >= v) {
          out->Add(Severity::kError, RuleId::kMO032_OrderViolation,
                   "vertex " + VertexLabel(graph, v) + " references v" +
                       std::to_string(in) +
                       ": forward reference breaks the topological-order "
                       "invariant (possible cycle)",
                   v, static_cast<int>(j));
        }
      }
    }

    // Liveness: declared outputs (or, absent a declaration, the sinks)
    // keep their ancestor cone alive.
    std::vector<int> consumers(graph.num_vertices(), 0);
    for (const Vertex& vx : graph.vertices()) {
      for (int in : vx.inputs) {
        if (in >= 0 && in < graph.num_vertices()) ++consumers[in];
      }
    }
    std::vector<bool> is_output(graph.num_vertices(), false);
    for (int v : ctx.options.outputs) {
      if (v >= 0 && v < graph.num_vertices()) is_output[v] = true;
    }
    bool outputs_declared = !ctx.options.outputs.empty();
    for (int v = 0; v < graph.num_vertices(); ++v) {
      if (consumers[v] > 0 || is_output[v]) continue;
      if (graph.vertex(v).op == OpKind::kInput) {
        out->Add(Severity::kWarning, RuleId::kMO031_UnusedInput,
                 "input matrix " + VertexLabel(graph, v) +
                     " is never used by any computation",
                 v);
      } else if (outputs_declared) {
        out->Add(Severity::kWarning, RuleId::kMO030_DeadVertex,
                 "result of " + VertexLabel(graph, v) +
                     " is neither consumed nor declared as an output",
                 v);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 1: re-run the type-spec function over the whole graph and
// cross-check it against the types stored at construction time.

class TypeCheckPass : public AnalysisPass {
 public:
  const char* name() const override { return "type-check"; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const ComputeGraph& graph = ctx.graph;
    const auto& formats = BuiltinFormats();
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (!VertexStructureOk(graph, v)) continue;  // reported by hygiene
      if (vx.op == OpKind::kInput) {
        if (vx.input_format < 0 ||
            vx.input_format >= static_cast<FormatId>(formats.size())) {
          out->Add(Severity::kError, RuleId::kMO003_SourceFormat,
                   "input " + VertexLabel(graph, v) +
                       " has no physical format assigned",
                   v);
        } else if (!FormatApplicable(formats[vx.input_format], vx.type,
                                     ctx.cluster.single_tuple_cap_bytes,
                                     vx.sparsity)) {
          out->Add(Severity::kError, RuleId::kMO003_SourceFormat,
                   "format " + FormatName(vx.input_format) +
                       " cannot store input " + VertexLabel(graph, v) +
                       " of type " + vx.type.ToString() +
                       " on this cluster",
                   v);
        }
        continue;
      }
      std::vector<MatrixType> in_types;
      in_types.reserve(vx.inputs.size());
      for (int in : vx.inputs) in_types.push_back(graph.vertex(in).type);
      Result<MatrixType> inferred = InferOutputType(vx.op, in_types);
      if (!inferred.ok()) {
        out->Add(Severity::kError, RuleId::kMO001_TypeMismatch,
                 "type-spec function rejects " + VertexLabel(graph, v) + ": " +
                     inferred.status().message(),
                 v);
      } else if (inferred.value() != vx.type) {
        out->Add(Severity::kError, RuleId::kMO001_TypeMismatch,
                 "stored type of " + VertexLabel(graph, v) + " is " +
                     vx.type.ToString() + " but re-inference yields " +
                     inferred.value().ToString(),
                 v);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 3: sparsity sanity. Range checks and estimator drift need no plan;
// the dense-op/sparse-format warning inspects the annotation when present.

class SparsityPass : public AnalysisPass {
 public:
  const char* name() const override { return "sparsity-sanity"; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const ComputeGraph& graph = ctx.graph;
    bool flow_applicable = true;
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (!VertexStructureOk(graph, v)) flow_applicable = false;
      if (!(vx.sparsity >= 0.0 && vx.sparsity <= 1.0)) {  // catches NaN too
        out->Add(Severity::kError, RuleId::kMO020_SparsityRange,
                 "sparsity estimate " + std::to_string(vx.sparsity) + " of " +
                     VertexLabel(graph, v) + " is outside [0, 1]",
                 v);
        flow_applicable = false;
      }
    }

    // MO022: every stored op-vertex estimate must lie inside the sound
    // forward interval seeded from the input annotations (IEEE-safe
    // transfer functions, src/analysis/domains.cc). A violation is
    // inconsistent with the program's own inputs — not merely far from a
    // heuristic — hence an error, not a note.
    if (flow_applicable) {
      DataflowResult flow = RunSparsityDataflow(graph);
      for (int v = 0; v < graph.num_vertices(); ++v) {
        const Vertex& vx = graph.vertex(v);
        if (vx.op == OpKind::kInput) continue;
        const SparsityInterval& iv = flow.at(v);
        if (!iv.Contains(vx.sparsity, ctx.options.sparsity_interval_slack)) {
          std::ostringstream msg;
          msg << "stored sparsity " << vx.sparsity << " of "
              << VertexLabel(graph, v)
              << " lies outside the sound interval [" << iv.lo << ", "
              << iv.hi << "] derived from the input annotations (op "
              << OpKindName(vx.op) << ")";
          out->Add(Severity::kError, RuleId::kMO022_SparsityDrift, msg.str(),
                   v);
        }
      }
    }

    if (ctx.annotation == nullptr) return;
    const Annotation& plan = *ctx.annotation;
    if (static_cast<int>(plan.vertices.size()) != graph.num_vertices()) return;
    const auto& formats = BuiltinFormats();
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (vx.op != OpKind::kExp && vx.op != OpKind::kSigmoid &&
          vx.op != OpKind::kSoftmax && vx.op != OpKind::kInverse) {
        continue;
      }
      FormatId f = plan.at(v).output_format;
      if (f >= 0 && f < static_cast<FormatId>(formats.size()) &&
          formats[f].sparse()) {
        out->Add(Severity::kWarning, RuleId::kMO021_DenseOpSparseOut,
                 std::string(OpKindName(vx.op)) + " " + VertexLabel(graph, v) +
                     " produces dense data but is annotated with sparse "
                     "format " +
                     FormatName(f),
                 v);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 5: annotation completeness and cost finiteness.

class CompletenessPass : public AnalysisPass {
 public:
  const char* name() const override { return "plan-completeness"; }
  bool needs_annotation() const override { return true; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const ComputeGraph& graph = ctx.graph;
    const Annotation& plan = *ctx.annotation;
    if (static_cast<int>(plan.vertices.size()) != graph.num_vertices()) {
      out->Add(Severity::kError, RuleId::kMO040_AnnotationShape,
               "annotation covers " + std::to_string(plan.vertices.size()) +
                   " vertices but the graph has " +
                   std::to_string(graph.num_vertices()));
      return;
    }
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (vx.op == OpKind::kInput || !VertexStructureOk(graph, v)) continue;
      const VertexAnnotation& va = plan.at(v);
      if (va.input_edges.size() != vx.inputs.size()) {
        out->Add(Severity::kError, RuleId::kMO040_AnnotationShape,
                 "vertex " + VertexLabel(graph, v) + " has " +
                     std::to_string(vx.inputs.size()) +
                     " argument edges but the annotation lists " +
                     std::to_string(va.input_edges.size()),
                 v);
        continue;
      }
      if (ImplOp(va.impl) != vx.op) {
        out->Add(Severity::kError, RuleId::kMO041_WrongImpl,
                 "vertex " + VertexLabel(graph, v) + " computes " +
                     OpKindName(vx.op) + " but is annotated with " +
                     ImplKindName(va.impl) + " (implements " +
                     OpKindName(ImplOp(va.impl)) + ")",
                 v);
        continue;
      }
      if (ctx.model == nullptr) continue;
      double cost = ctx.model->ImplCost(ctx.catalog, va.impl,
                                        ArgsForVertex(graph, plan, v),
                                        ctx.cluster);
      CheckCost(graph, v, -1,
                std::string("implementation ") + ImplKindName(va.impl), cost,
                out);
      for (size_t j = 0; j < vx.inputs.size(); ++j) {
        const EdgeAnnotation& e = va.input_edges[j];
        if (!e.transform.has_value()) continue;
        const Vertex& child = graph.vertex(vx.inputs[j]);
        double tcost = ctx.model->TransformCost(
            ctx.catalog, *e.transform,
            ArgInfo{child.type, e.pin, child.sparsity}, ctx.cluster);
        CheckCost(graph, v, static_cast<int>(j),
                  std::string("transformation ") +
                      TransformKindName(*e.transform),
                  tcost, out);
      }
    }
  }

 private:
  static void CheckCost(const ComputeGraph& graph, int v, int edge_arg,
                        const std::string& what, double cost,
                        DiagnosticList* out) {
    if (std::isfinite(cost) && cost >= 0.0) return;
    std::ostringstream msg;
    msg << "cost model yields " << cost << " for " << what << " at "
        << VertexLabel(graph, v);
    out->Add(Severity::kError, RuleId::kMO042_BadCost, msg.str(), v, edge_arg);
  }
};

// ---------------------------------------------------------------------------
// Pass 2: per-edge layout compatibility and transform legality.

class LayoutCompatPass : public AnalysisPass {
 public:
  const char* name() const override { return "layout-compat"; }
  bool needs_annotation() const override { return true; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const ComputeGraph& graph = ctx.graph;
    const Annotation& plan = *ctx.annotation;
    if (static_cast<int>(plan.vertices.size()) != graph.num_vertices()) {
      return;  // reported by plan-completeness
    }
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      if (!VertexStructureOk(graph, v)) continue;
      const VertexAnnotation& va = plan.at(v);
      if (vx.op == OpKind::kInput) {
        if (va.output_format != vx.input_format) {
          out->Add(Severity::kError, RuleId::kMO014_OutputFormat,
                   "source " + VertexLabel(graph, v) + " is stored as " +
                       FormatName(vx.input_format) +
                       " but the plan annotates " +
                       FormatName(va.output_format),
                   v);
        }
        continue;
      }
      if (va.input_edges.size() != vx.inputs.size() ||
          ImplOp(va.impl) != vx.op) {
        continue;  // reported by plan-completeness
      }
      bool edges_ok = true;
      for (size_t j = 0; j < vx.inputs.size(); ++j) {
        const EdgeAnnotation& e = va.input_edges[j];
        const Vertex& child = graph.vertex(vx.inputs[j]);
        const VertexAnnotation& ca = plan.at(vx.inputs[j]);
        if (e.pin != ca.output_format) {
          out->Add(Severity::kError, RuleId::kMO010_EdgePinMismatch,
                   "edge " + VertexLabel(graph, vx.inputs[j]) + " -> " +
                       VertexLabel(graph, v) + " reads format " +
                       FormatName(e.pin) + " but the producer emits " +
                       FormatName(ca.output_format),
                   v, static_cast<int>(j));
          edges_ok = false;
          continue;
        }
        if (e.transform.has_value()) {
          ArgInfo in{child.type, e.pin, child.sparsity};
          auto produced =
              ctx.catalog.TransformOutputFormat(*e.transform, in, ctx.cluster);
          if (!produced.has_value()) {
            out->Add(Severity::kError, RuleId::kMO011_NoTransform,
                     "transformation " +
                         std::string(TransformKindName(*e.transform)) +
                         " cannot apply to " + FormatName(e.pin) +
                         " on edge " + VertexLabel(graph, vx.inputs[j]) +
                         " -> " + VertexLabel(graph, v),
                     v, static_cast<int>(j));
            edges_ok = false;
          } else if (*produced != e.pout) {
            out->Add(Severity::kError, RuleId::kMO011_NoTransform,
                     "transformation " +
                         std::string(TransformKindName(*e.transform)) +
                         " turns " + FormatName(e.pin) + " into " +
                         FormatName(*produced) + ", not the annotated " +
                         FormatName(e.pout) + ", on edge " +
                         VertexLabel(graph, vx.inputs[j]) + " -> " +
                         VertexLabel(graph, v),
                     v, static_cast<int>(j));
            edges_ok = false;
          }
        } else if (e.pin != e.pout) {
          out->Add(Severity::kError, RuleId::kMO012_IdentityMismatch,
                   "edge " + VertexLabel(graph, vx.inputs[j]) + " -> " +
                       VertexLabel(graph, v) + " has no transformation but "
                       "changes format " +
                       FormatName(e.pin) + " -> " + FormatName(e.pout),
                   v, static_cast<int>(j));
          edges_ok = false;
        }
      }
      if (!edges_ok) continue;
      auto produced = ctx.catalog.ImplOutputFormat(
          va.impl, ArgsForVertex(graph, plan, v), ctx.cluster);
      if (!produced.has_value()) {
        std::ostringstream msg;
        msg << ImplKindName(va.impl) << " at " << VertexLabel(graph, v)
            << " cannot process its input formats (⊥):";
        for (size_t j = 0; j < vx.inputs.size(); ++j) {
          msg << " arg" << j << "=" << FormatName(va.input_edges[j].pout);
        }
        out->Add(Severity::kError, RuleId::kMO013_ImplRejectsInputs, msg.str(),
                 v);
      } else if (*produced != va.output_format) {
        out->Add(Severity::kError, RuleId::kMO014_OutputFormat,
                 "vertex " + VertexLabel(graph, v) + " annotates output " +
                     FormatName(va.output_format) + " but " +
                     ImplKindName(va.impl) + " produces " +
                     FormatName(*produced),
                 v);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 6: abstract-interpretation bounds (DESIGN.md §14). Statically
// pre-flights every dist exchange stage of the plan against the cluster
// budgets (MO060 definite / MO061 possible violation) and cross-checks the
// planner cost against the bounds-derived cost envelope (MO062).

class DataflowPass : public AnalysisPass {
 public:
  const char* name() const override { return "dataflow-bounds"; }
  bool needs_annotation() const override { return true; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    if (!ctx.options.dist_preflight) return;
    const ComputeGraph& graph = ctx.graph;
    const Annotation& plan = *ctx.annotation;
    if (static_cast<int>(plan.vertices.size()) != graph.num_vertices()) return;
    for (int v = 0; v < graph.num_vertices(); ++v) {
      const Vertex& vx = graph.vertex(v);
      // Earlier passes report these; the bounds need a well-formed plan.
      if (!VertexStructureOk(graph, v)) return;
      if (!(vx.sparsity >= 0.0 && vx.sparsity <= 1.0)) return;
      if (vx.op == OpKind::kInput) continue;
      const VertexAnnotation& va = plan.at(v);
      if (va.input_edges.size() != vx.inputs.size() ||
          ImplOp(va.impl) != vx.op) {
        return;
      }
    }
    DataflowResult flow = RunSparsityDataflow(graph);
    PreflightDistBudgets(ctx, flow, out);
    if (ctx.model != nullptr) CheckCostEnvelope(ctx, flow, out);
  }

 private:
  static void PreflightDistBudgets(const AnalysisContext& ctx,
                                   const DataflowResult& flow,
                                   DiagnosticList* out) {
    int workers = ctx.options.dist_preflight_workers > 0
                      ? ctx.options.dist_preflight_workers
                      : ctx.cluster.num_workers;
    Result<std::vector<StageBounds>> bounds = ComputeDistStageBounds(
        ctx.catalog, ctx.cluster, ctx.graph, *ctx.annotation, flow, workers);
    if (!bounds.ok()) return;  // infeasible transform: layout-compat reports
    for (const StageBounds& sb : bounds.value()) {
      auto check = [&](const ByteInterval& b, double budget,
                       const std::string& what, const char* budget_name) {
        if (!(budget > 0.0)) return;
        std::ostringstream msg;
        if (b.lo > budget) {
          msg << "dist stage " << sb.label << ": " << what << " needs at "
              << "least " << b.lo << " bytes, over " << budget_name << " "
              << budget << " for every data consistent with the sound bounds";
          out->Add(Severity::kError, RuleId::kMO060_DistBudgetExceeded,
                   msg.str(), sb.vertex, sb.edge_arg);
        } else if (b.hi > budget) {
          msg << "dist stage " << sb.label << ": " << what << " can reach "
              << b.hi << " bytes, over " << budget_name << " " << budget
              << " within the sound bounds";
          out->Add(Severity::kWarning, RuleId::kMO061_DistBudgetRisk,
                   msg.str(), sb.vertex, sb.edge_arg);
        }
      };
      for (size_t j = 0; j < sb.args.size(); ++j) {
        const StageBounds::ArgBound& ab = sb.args[j];
        std::string arg = "arg" + std::to_string(j);
        if (ab.broadcast) {
          check(ab.total_bytes, ctx.cluster.broadcast_cap_bytes,
                "broadcasting " + arg + "'s relation", "broadcast cap");
        }
        check(ab.max_tuple_bytes, ctx.cluster.single_tuple_cap_bytes,
              "the largest tuple of " + arg, "single-tuple cap");
      }
      check(sb.max_worker_inbound, ctx.cluster.worker_spill_bytes,
            "a worker's inbound shuffle volume", "worker spill budget");
    }
  }

  /// MO062: the planner's cost for the annotated plan must lie inside the
  /// envelope spanned by re-costing the graph at the interval endpoints.
  /// Cost models are monotone in sparsity, so the all-lo/all-hi graphs
  /// bracket every sparsity assignment consistent with the bounds.
  static void CheckCostEnvelope(const AnalysisContext& ctx,
                                const DataflowResult& flow,
                                DiagnosticList* out) {
    const ComputeGraph& graph = ctx.graph;
    double actual = AnnotationCost(graph, *ctx.annotation, ctx.catalog,
                                   *ctx.model, ctx.cluster);
    ComputeGraph lo_graph = graph;
    ComputeGraph hi_graph = graph;
    for (int v = 0; v < graph.num_vertices(); ++v) {
      lo_graph.vertex(v).sparsity = flow.at(v).lo;
      hi_graph.vertex(v).sparsity = flow.at(v).hi;
    }
    double c_lo = AnnotationCost(lo_graph, *ctx.annotation, ctx.catalog,
                                 *ctx.model, ctx.cluster);
    double c_hi = AnnotationCost(hi_graph, *ctx.annotation, ctx.catalog,
                                 *ctx.model, ctx.cluster);
    if (!std::isfinite(actual) || !std::isfinite(c_lo) ||
        !std::isfinite(c_hi)) {
      return;  // MO042 covers non-finite costs
    }
    double env_lo = std::min(c_lo, c_hi);
    double env_hi = std::max(c_lo, c_hi);
    double pad = ctx.options.cost_envelope_rel_tolerance * (1.0 + env_hi);
    if (actual < env_lo - pad || actual > env_hi + pad) {
      std::ostringstream msg;
      msg << "planner cost " << actual << " lies outside the bounds-derived "
          << "cost envelope [" << env_lo << ", " << env_hi << "]";
      out->Add(Severity::kWarning, RuleId::kMO062_CostEnvelope, msg.str());
    }
  }
};

// ---------------------------------------------------------------------------
// Pass 7: fused-group consistency (DESIGN.md §15). Every group the plan
// carries must satisfy the full fusion legality rules (MO070) — the
// executor's pre-flight runs this pass, so illegal hand-built groups are
// rejected before any member passes payloads through. Groups must also be
// pairwise vertex-disjoint and no group's base may be another group's
// member (an in-place chain over shared payloads would corrupt them).
// When a cost model is in scope, a group whose predicted savings are not
// positive draws an MO071 warning: the costed no-fusion alternative was
// cheaper, so the planner should not have kept it.

class FusionPass : public AnalysisPass {
 public:
  const char* name() const override { return "fusion-groups"; }
  bool needs_annotation() const override { return true; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    const Annotation& plan = *ctx.annotation;
    if (plan.fusion.empty()) return;
    if (static_cast<int>(plan.vertices.size()) != ctx.graph.num_vertices()) {
      return;  // MO040 covers malformed annotations
    }
    std::vector<int> claimed(ctx.graph.num_vertices(), -1);  // -1 = free
    for (size_t g = 0; g < plan.fusion.groups.size(); ++g) {
      const FusedGroup& group = plan.fusion.groups[g];
      Status st = ValidateFusedGroup(ctx.graph, plan, group);
      if (!st.ok()) {
        out->Add(Severity::kError, RuleId::kMO070_FusedGroupInvalid,
                 "fused group " + std::to_string(g) + ": " + st.message(),
                 group.base >= 0 && group.base < ctx.graph.num_vertices()
                     ? group.base
                     : -1);
        continue;
      }
      auto claim = [&](int v, const char* role) {
        if (claimed[v] >= 0) {
          out->Add(Severity::kError, RuleId::kMO070_FusedGroupInvalid,
                   "fused group " + std::to_string(g) + ": " + role + " " +
                       VertexLabel(ctx.graph, v) +
                       " already belongs to fused group " +
                       std::to_string(claimed[v]),
                   v);
          return;
        }
        claimed[v] = static_cast<int>(g);
      };
      claim(group.base, "base");
      for (int m : group.members) claim(m, "member");
      if (ctx.model != nullptr) {
        double savings = FusedGroupSavings(ctx.graph, plan, ctx.catalog,
                                           *ctx.model, ctx.cluster, group);
        if (!(savings > 0.0)) {
          std::ostringstream msg;
          msg << "fused group " << g << " (base "
              << VertexLabel(ctx.graph, group.base) << ", "
              << group.members.size()
              << " member(s)) predicts savings of " << savings
              << " sec; the costed no-fusion alternative was cheaper";
          out->Add(Severity::kWarning, RuleId::kMO071_FusionNotBeneficial,
                   msg.str(), group.base);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeGraphHygienePass() {
  return std::make_unique<GraphHygienePass>();
}
std::unique_ptr<AnalysisPass> MakeTypeCheckPass() {
  return std::make_unique<TypeCheckPass>();
}
std::unique_ptr<AnalysisPass> MakeSparsityPass() {
  return std::make_unique<SparsityPass>();
}
std::unique_ptr<AnalysisPass> MakeCompletenessPass() {
  return std::make_unique<CompletenessPass>();
}
std::unique_ptr<AnalysisPass> MakeLayoutCompatPass() {
  return std::make_unique<LayoutCompatPass>();
}
std::unique_ptr<AnalysisPass> MakeDataflowPass() {
  return std::make_unique<DataflowPass>();
}
std::unique_ptr<AnalysisPass> MakeFusionPass() {
  return std::make_unique<FusionPass>();
}

DiagnosticList AnalysisPipeline::Run(const AnalysisContext& ctx) const {
  DiagnosticList out;
  for (const auto& pass : passes_) {
    if (pass->needs_annotation() && ctx.annotation == nullptr) continue;
    pass->Run(ctx, &out);
    // Structural breakage invalidates what later passes assume; stop the
    // pipeline rather than cascade spurious findings.
    if (out.CountRule(RuleId::kMO002_MalformedVertex) > 0 ||
        out.CountRule(RuleId::kMO032_OrderViolation) > 0 ||
        out.CountRule(RuleId::kMO040_AnnotationShape) > 0) {
      break;
    }
  }
  // Anchor findings to .mla source positions when the parser recorded
  // them on the vertices.
  for (Diagnostic& d : out.mutable_diagnostics()) {
    if (d.vertex < 0 || d.vertex >= ctx.graph.num_vertices()) continue;
    if (d.line > 0) continue;
    const Vertex& vx = ctx.graph.vertex(d.vertex);
    d.line = vx.src_line;
    d.column = vx.src_column;
  }
  return out;
}

AnalysisPipeline DefaultPipeline(bool with_optimality_check) {
  AnalysisPipeline pipeline;
  pipeline.AddPass(MakeGraphHygienePass());
  pipeline.AddPass(MakeTypeCheckPass());
  pipeline.AddPass(MakeSparsityPass());
  pipeline.AddPass(MakeCompletenessPass());
  pipeline.AddPass(MakeLayoutCompatPass());
  pipeline.AddPass(MakeDataflowPass());
  pipeline.AddPass(MakeFusionPass());
  if (with_optimality_check) pipeline.AddPass(MakeOptimalityCheckPass());
  return pipeline;
}

}  // namespace matopt
