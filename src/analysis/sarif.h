#ifndef MATOPT_ANALYSIS_SARIF_H_
#define MATOPT_ANALYSIS_SARIF_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"

namespace matopt {

/// Findings of one linted file, for machine-readable rendering.
struct FileDiagnostics {
  std::string path;
  DiagnosticList diagnostics;
};

/// Stable JSON rendering of lint results (matopt_lint --format=json):
///
///   { "version": 1,
///     "files": [ { "path": "...", "diagnostics": [
///         { "rule": "MO060", "severity": "error", "message": "...",
///           "vertex": 3, "edge_arg": -1, "line": 7, "column": 5 } ] } ] }
///
/// The schema is append-only: fields are never renamed or removed.
std::string RenderDiagnosticsJson(const std::vector<FileDiagnostics>& files);

/// SARIF 2.1.0 rendering (matopt_lint --format=sarif) suitable for GitHub
/// code-scanning upload: one run, the full MO rule catalog in the driver,
/// one result per diagnostic with its physical location when the source
/// position is known.
std::string RenderDiagnosticsSarif(const std::vector<FileDiagnostics>& files);

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_SARIF_H_
