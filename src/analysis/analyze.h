#ifndef MATOPT_ANALYSIS_ANALYZE_H_
#define MATOPT_ANALYSIS_ANALYZE_H_

#include "analysis/pass.h"

namespace matopt {

/// Runs the graph-only passes (structure, types, sparsity) over a compute
/// graph — the post-parse lint entry point.
DiagnosticList AnalyzeGraph(const ComputeGraph& graph, const Catalog& catalog,
                            const ClusterConfig& cluster,
                            const AnalysisOptions& options = {});

/// Runs the full pipeline over an annotated plan. `model` may be null
/// (cost-finiteness checks are then skipped). `check_optimality` appends
/// the debug-mode brute-force cross-check.
DiagnosticList AnalyzePlan(const ComputeGraph& graph,
                           const Annotation& annotation,
                           const Catalog& catalog, const CostModel* model,
                           const ClusterConfig& cluster,
                           const AnalysisOptions& options = {},
                           bool check_optimality = false);

/// Post-search safety net used by the three optimizers: runs the plan
/// pipeline over a freshly found plan and folds error findings into a
/// Status (OK when the plan is clean; warnings and notes never fail the
/// search). Kept cheap: no optimality cross-check.
Status VerifySearchResult(const ComputeGraph& graph,
                          const Annotation& annotation, const Catalog& catalog,
                          const CostModel& model,
                          const ClusterConfig& cluster);

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_ANALYZE_H_
