#ifndef MATOPT_ANALYSIS_DATAFLOW_H_
#define MATOPT_ANALYSIS_DATAFLOW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/domains.h"
#include "common/status.h"
#include "core/graph/graph.h"
#include "core/ops/catalog.h"
#include "core/opt/annotation.h"
#include "engine/cluster.h"

namespace matopt {

/// Forward abstract interpretation over the program DAG (DESIGN.md §14).
/// Vertices are visited in the graph's topological order; every vertex gets
/// a sound density interval. Shape stays exact (Vertex::type, re-derived by
/// InferOutputType at construction), so only the sparsity layer needs a
/// fixpoint-free single forward sweep — the graph is a DAG and every
/// transfer function is monotone in interval inclusion.

struct DataflowResult {
  /// One interval per vertex id. Inputs are seeded with their stored
  /// sparsity as a point interval unless overridden; op vertices carry the
  /// transfer-function image of their argument intervals.
  std::vector<SparsityInterval> vertex_sparsity;

  const SparsityInterval& at(int v) const { return vertex_sparsity[v]; }
};

/// Runs the forward sparsity dataflow. `seeds` overrides the interval of
/// any vertex with a point (input overrides and mid-graph pins — a pinned
/// vertex's transfer result is replaced by the pin, mirroring
/// PropagateSparsity's pinning semantics). Pass nullptr for the default
/// seeding (inputs at their stored sparsity).
DataflowResult RunSparsityDataflow(
    const ComputeGraph& graph,
    const std::unordered_map<int, double>* seeds = nullptr);

/// Statically derived bounds of one dist exchange stage. Labels match the
/// dist runtime's stage records (`v<id>:<ImplKindName>` /
/// `v<id>.arg<j>:transform:<TransformKindName>`) record for record, so the
/// fuzz oracle can line measured traffic up against these intervals and the
/// lint pre-flight can name the offending stage.
struct StageBounds {
  std::string label;
  int vertex = -1;
  int edge_arg = -1;  // transform stages only; -1 for impl stages

  /// Remote traffic this stage's routing implies, over all data whose
  /// densities lie in the dataflow intervals (adversarial placement of
  /// non-zeros across chunks included).
  ByteInterval shuffle_bytes;
  ByteInterval broadcast_bytes;
  /// Deliveries (incl. local) — routing is metadata-only, so this is exact.
  double tuples = 0.0;

  /// Budget-facing quantities.
  struct ArgBound {
    bool broadcast = false;
    ByteInterval total_bytes;      // vs broadcast_cap_bytes when broadcast
    ByteInterval max_tuple_bytes;  // vs single_tuple_cap_bytes
  };
  std::vector<ArgBound> args;
  /// max over workers of the per-worker remote shuffle inbound
  /// (vs worker_spill_bytes): lo/hi are each worker's own extremes, maxed.
  ByteInterval max_worker_inbound;
};

/// Walks the annotated plan's exchange-stage sequence exactly as the dist
/// runtime's projection/data passes do (same labels, same order, same
/// metadata grids) and derives sound byte bounds per stage from the
/// dataflow intervals. `input_sparsity` optionally overrides the relation
/// sparsity of input vertices (the oracle passes measured densities; lint
/// uses the declared ones) — it must agree with the seeds used for `flow`.
/// Fails only when the annotation is not executable (infeasible transform).
Result<std::vector<StageBounds>> ComputeDistStageBounds(
    const Catalog& catalog, const ClusterConfig& cluster,
    const ComputeGraph& graph, const Annotation& annotation,
    const DataflowResult& flow, int num_workers,
    const std::unordered_map<int, double>* input_sparsity = nullptr);

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_DATAFLOW_H_
