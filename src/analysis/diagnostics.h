#ifndef MATOPT_ANALYSIS_DIAGNOSTICS_H_
#define MATOPT_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace matopt {

/// Severity of one analysis finding. Errors make a graph/plan unusable;
/// warnings flag suspicious-but-executable constructs; notes carry
/// advisory context (skipped passes, estimator deviations).
enum class Severity {
  kError = 0,
  kWarning,
  kNote,
};

const char* SeverityName(Severity severity);

/// Stable rule identifiers for every diagnostic the analysis passes can
/// emit. The numeric ranges group rules by pass:
///   MO00x  type/shape re-inference        (TypeCheckPass)
///   MO01x  layout & transform legality    (LayoutCompatPass)
///   MO02x  sparsity sanity                (SparsityPass)
///   MO03x  graph hygiene                  (GraphHygienePass)
///   MO04x  annotation completeness & cost (CompletenessPass)
///   MO05x  optimality cross-check         (OptimalityCheckPass)
///   MO06x  dataflow bounds & pre-flight   (DataflowPass)
///   MO07x  fused-group consistency        (FusionPass)
///   MO08x  logical-rewrite consistency    (AnalyzeRewrite)
///   MO09x  optimizer-service diagnostics  (src/serve, DESIGN.md §17)
/// Identifiers are append-only: never renumber a shipped rule.
enum class RuleId {
  kMO001_TypeMismatch = 0,   // re-inferred type differs from Vertex::type
  kMO002_MalformedVertex,    // arity / argument-id structure is broken
  kMO003_SourceFormat,       // source format unknown or not applicable
  kMO010_EdgePinMismatch,    // edge pin != producer's output format
  kMO011_NoTransform,        // no registered transform achieves pin->pout
  kMO012_IdentityMismatch,   // identity edge with differing formats
  kMO013_ImplRejectsInputs,  // i.f(args) = ⊥ for the annotated impl
  kMO014_OutputFormat,       // annotated output format disagrees with i.f
  kMO020_SparsityRange,      // sparsity outside [0, 1]
  kMO021_DenseOpSparseOut,   // densifying op annotated with a sparse format
  kMO022_SparsityDrift,      // stored estimate far from the estimator
  kMO030_DeadVertex,         // op vertex with no consumers, not an output
  kMO031_UnusedInput,        // input matrix no computation consumes
  kMO032_OrderViolation,     // topological order / cycle invariant broken
  kMO040_AnnotationShape,    // annotation missing or wrong vertex count
  kMO041_WrongImpl,          // impl absent or implements a different op
  kMO042_BadCost,            // NaN / infinite / negative predicted cost
  kMO050_NotOptimal,         // DP plan costs more than brute-force optimum
  kMO051_CheckSkipped,       // cross-check skipped (size / timeout)
  kMO060_DistBudgetExceeded, // a dist stage definitely breaks a budget
  kMO061_DistBudgetRisk,     // a dist stage may break a budget (upper bound)
  kMO062_CostEnvelope,       // planner cost outside the bounds-derived envelope
  kMO070_FusedGroupInvalid,  // fused group breaks shape/ownership/chain rules
  kMO071_FusionNotBeneficial,  // costed no-fusion alternative was cheaper
  kMO080_RewriteSparsityMismatch,  // rewritten sink's sound sparsity interval
                                   // is disjoint from the original's
  kMO081_RewriteBudgetHit,  // rewrite saturation budget stopped the closure
  kMO090_StalePlanReuse,    // cached plan re-costed outside the reuse
                            // envelope of a fresh search; entry invalidated
  kMO091_ServeBudgetRejected,   // plan cost exceeds the tenant's cost budget
  kMO092_AdmissionThrottled,    // tenant over its concurrent-request cap
};

/// The stable "MOxxx" spelling of a rule id.
const char* RuleIdName(RuleId rule);

/// One-line human description of what a rule checks (the rule catalog of
/// DESIGN.md §9; `matopt_lint --rules` prints this table).
const char* RuleIdDescription(RuleId rule);

/// One analysis finding, anchored to a vertex (and optionally one of its
/// input edges) and — when the graph came from the .mla parser — to a
/// source line/column.
struct Diagnostic {
  Severity severity = Severity::kError;
  RuleId rule = RuleId::kMO001_TypeMismatch;
  std::string message;
  int vertex = -1;    // anchor vertex id, -1 = whole graph
  int edge_arg = -1;  // argument index of the offending in-edge, -1 = none
  int line = 0;       // 1-based .mla source position, 0 = unknown
  int column = 0;

  /// Compact single-line rendering: "error[MO001]: message (v3, line 7)".
  std::string ToString() const;
};

/// Ordered collection of findings from one pipeline run.
class DiagnosticList {
 public:
  void Add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  void Add(Severity severity, RuleId rule, std::string message,
           int vertex = -1, int edge_arg = -1);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic>& mutable_diagnostics() { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  bool HasErrors() const { return CountSeverity(Severity::kError) > 0; }
  int CountSeverity(Severity severity) const;
  int CountRule(RuleId rule) const;

  /// Removes later duplicates of the same (rule, vertex, edge_arg, message)
  /// key, keeping first occurrences in order. Pipelines that run both
  /// post-parse and post-search would otherwise double-report graph-level
  /// findings; golden tests rely on the deduplicated counts being stable.
  void Deduplicate();

  /// First error, as a Status suitable for legacy call sites. OK when the
  /// list holds no errors (warnings and notes do not fail a Status).
  Status ToStatus() const;

  /// All findings, one compact line each.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Renders one finding rustc-style against its source file:
///
///   error[MO011]: no registered transform from tiles(1000) to sp_csr
///     --> examples/programs/ffnn_step.mla:13:6
///      |
///   13 | A1 = relu(X * W1 .+ b1);
///      |      ^
///
/// `source` may be empty (no snippet is printed); positions of 0 keep the
/// `-->` line (naming the file) but omit the line/column and snippet.
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             const std::string& file_name,
                             const std::string& source);

/// The full rule catalog, in id order (for `matopt_lint --rules` and the
/// DESIGN.md table).
std::vector<RuleId> AllRuleIds();

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_DIAGNOSTICS_H_
