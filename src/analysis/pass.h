#ifndef MATOPT_ANALYSIS_PASS_H_
#define MATOPT_ANALYSIS_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/cost/cost_model.h"
#include "core/graph/graph.h"
#include "core/ops/catalog.h"
#include "core/opt/annotation.h"
#include "engine/cluster.h"

namespace matopt {

/// Tunables shared by the analysis passes.
struct AnalysisOptions {
  /// MO022: absolute slack added to the sound sparsity interval before the
  /// membership check (floating-point headroom for deep transfer chains).
  double sparsity_interval_slack = 1e-9;

  /// MO060/MO061: statically pre-flight every dist exchange stage of the
  /// plan against the cluster budgets. Off by default: the executor's
  /// pre-flight and the dist runtime already enforce budgets on the
  /// estimated/measured data, and several tests exercise exactly those
  /// typed runtime failures — lint and the fuzz oracle opt in.
  bool dist_preflight = false;

  /// Worker count the dist pre-flight plans for; 0 = cluster.num_workers.
  int dist_preflight_workers = 0;

  /// MO062: relative slack of the bounds-derived cost envelope.
  double cost_envelope_rel_tolerance = 1e-3;

  /// MO050: run the brute-force optimality cross-check only when the graph
  /// has at most this many op vertices (the search is exponential).
  int optimality_max_op_vertices = 16;

  /// MO050: wall-clock budget for the cross-check's brute-force re-search;
  /// a timeout downgrades the check to an MO051 note.
  double optimality_time_limit_sec = 30.0;

  /// MO050: relative cost-difference tolerance between the checked plan
  /// and the brute-force optimum.
  double optimality_rel_tolerance = 1e-6;

  /// Declared program outputs (vertex ids). When empty the graph's sinks
  /// are assumed to be the outputs (so MO030 never fires).
  std::vector<int> outputs;
};

/// Everything a pass may look at. `annotation` is null for graph-only
/// analysis (post-parse lint); `model` is null when no cost model is in
/// scope (the executor's pre-flight run) — cost rules are then skipped.
struct AnalysisContext {
  const ComputeGraph& graph;
  const Catalog& catalog;
  const ClusterConfig& cluster;
  const Annotation* annotation = nullptr;
  const CostModel* model = nullptr;
  AnalysisOptions options;
};

/// One analysis pass: inspects the context, appends findings. Passes are
/// stateless between runs and must not mutate the graph or plan.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// Stable pass name (DESIGN.md §9 pipeline table, `matopt_lint -v`).
  virtual const char* name() const = 0;

  /// True when the pass can only run with a plan (`ctx.annotation` set).
  virtual bool needs_annotation() const { return false; }

  virtual void Run(const AnalysisContext& ctx, DiagnosticList* out) const = 0;
};

/// An ordered pass pipeline. Passes requiring an annotation are skipped
/// automatically when the context has none, so one pipeline serves both
/// the post-parse and the pre-execution entry points.
class AnalysisPipeline {
 public:
  void AddPass(std::unique_ptr<AnalysisPass> pass) {
    passes_.push_back(std::move(pass));
  }

  const std::vector<std::unique_ptr<AnalysisPass>>& passes() const {
    return passes_;
  }

  /// Runs every applicable pass in order and returns all findings.
  DiagnosticList Run(const AnalysisContext& ctx) const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

/// The default pipeline: the seven shipped passes in dependency order
/// (structure first, so later passes may assume a well-formed graph).
/// `with_optimality_check` appends the debug-mode brute-force cross-check
/// (expensive; off in production paths).
AnalysisPipeline DefaultPipeline(bool with_optimality_check = false);

// Factories for the individual passes (exposed for tests and custom
// pipelines).
std::unique_ptr<AnalysisPass> MakeGraphHygienePass();
std::unique_ptr<AnalysisPass> MakeTypeCheckPass();
std::unique_ptr<AnalysisPass> MakeSparsityPass();
std::unique_ptr<AnalysisPass> MakeCompletenessPass();
std::unique_ptr<AnalysisPass> MakeLayoutCompatPass();
std::unique_ptr<AnalysisPass> MakeOptimalityCheckPass();
std::unique_ptr<AnalysisPass> MakeDataflowPass();
std::unique_ptr<AnalysisPass> MakeFusionPass();

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_PASS_H_
