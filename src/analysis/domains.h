#ifndef MATOPT_ANALYSIS_DOMAINS_H_
#define MATOPT_ANALYSIS_DOMAINS_H_

#include <vector>

#include "core/format/format.h"
#include "core/format/matrix_type.h"
#include "core/graph/graph.h"

namespace matopt {

/// Abstract domains of the dataflow analyzer (DESIGN.md §14). Three
/// composable layers:
///   shape     — exact (MatrixType, re-derived by the type-spec function)
///   sparsity  — an interval [lo, hi] of the non-zero fraction, closed
///               under per-op transfer functions that are *sound*: for any
///               concrete input data whose densities lie in the input
///               intervals, the measured output density lies in the output
///               interval
///   bytes     — derived intervals of serialized relation/tuple volume
///               under a concrete physical layout
/// Soundness is with respect to IEEE arithmetic as executed by the
/// kernels: densifying maps (exp, sigmoid, softmax, inverse) keep a lower
/// bound of 0 because gradual underflow can produce exact zeros (e.g.
/// exp(-746) == 0.0), and additive ops keep 0 because of cancellation.

/// Interval of a matrix's non-zero fraction. The lattice is intervals of
/// [0, 1] ordered by inclusion; Top() is the whole range.
struct SparsityInterval {
  double lo = 0.0;
  double hi = 1.0;

  static SparsityInterval Point(double s) { return {s, s}; }
  static SparsityInterval Top() { return {0.0, 1.0}; }

  /// True when `s` lies inside the interval, widened by an absolute slack
  /// (floating-point headroom for chains of transfer evaluations).
  bool Contains(double s, double slack = 1e-9) const {
    return s >= lo - slack && s <= hi + slack;
  }
  bool IsPoint(double slack = 1e-12) const { return hi - lo <= slack; }

  /// Clamps a scalar estimate into the interval (used to keep heuristic
  /// sparsity annotations sound by construction).
  double Clamp(double s) const {
    if (s < lo) return lo;
    if (s > hi) return hi;
    return s;
  }
};

/// Sound per-op transfer function over non-zero-count reasoning. `in` and
/// `in_types` describe the argument vertices (in argument order),
/// `out_type` the result shape, `scalar` the kScalarMul attribute.
/// Unknown arities fall back to Top().
SparsityInterval TransferSparsity(OpKind op, double scalar,
                                  const std::vector<SparsityInterval>& in,
                                  const std::vector<MatrixType>& in_types,
                                  const MatrixType& out_type);

/// Interval of byte volume.
struct ByteInterval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double b, double rel_slack = 1e-9) const {
    double pad = rel_slack * (1.0 + hi);
    return b >= lo - pad && b <= hi + pad;
  }
};

/// Serialized size of a whole relation holding `type` in `format` when the
/// matrix density lies in `sparsity`: exact (lo == hi) for dense layouts
/// (8 bytes per entry regardless of density), an interval for sparse
/// layouts (16 bytes per stored non-zero plus an 8-bytes-per-row index).
ByteInterval RelationByteBounds(const MatrixType& type, const Format& format,
                                SparsityInterval sparsity);

}  // namespace matopt

#endif  // MATOPT_ANALYSIS_DOMAINS_H_
