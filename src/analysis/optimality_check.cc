// Pass 6: the debug-mode optimality cross-check harness. For graphs small
// enough to enumerate, re-runs the exhaustive search (Algorithm 2) and
// compares its optimum against the cost of the plan under analysis. A
// tree-DP (Algorithm 3) or frontier-DP (Algorithm 4) plan that costs more
// than the brute-force optimum is a correctness bug in the DP — this pass
// turns that invariant into a continuously checked contract.

#include <cmath>
#include <memory>
#include <sstream>

#include "analysis/pass.h"
#include "core/opt/optimizer.h"

namespace matopt {

namespace {

class OptimalityCheckPass : public AnalysisPass {
 public:
  const char* name() const override { return "optimality-cross-check"; }
  bool needs_annotation() const override { return true; }

  void Run(const AnalysisContext& ctx, DiagnosticList* out) const override {
    if (ctx.model == nullptr) {
      out->Add(Severity::kNote, RuleId::kMO051_CheckSkipped,
               "optimality cross-check skipped: no cost model in scope");
      return;
    }
    int op_vertices = 0;
    for (const Vertex& vx : ctx.graph.vertices()) {
      if (vx.op != OpKind::kInput) ++op_vertices;
    }
    if (op_vertices > ctx.options.optimality_max_op_vertices) {
      out->Add(Severity::kNote, RuleId::kMO051_CheckSkipped,
               "optimality cross-check skipped: " +
                   std::to_string(op_vertices) + " op vertices exceed the " +
                   std::to_string(ctx.options.optimality_max_op_vertices) +
                   "-vertex enumeration threshold");
      return;
    }

    // The plan under analysis must have been produced under the default
    // search options for the comparison to be apples-to-apples.
    OptimizerOptions options;
    options.time_limit_sec = ctx.options.optimality_time_limit_sec;
    Result<PlanResult> brute = BruteForceOptimize(ctx.graph, ctx.catalog,
                                                  *ctx.model, ctx.cluster,
                                                  options);
    if (!brute.ok()) {
      if (brute.status().IsTimeout()) {
        out->Add(Severity::kNote, RuleId::kMO051_CheckSkipped,
                 "optimality cross-check skipped: exhaustive search exceeded "
                 "its " +
                     std::to_string(ctx.options.optimality_time_limit_sec) +
                     "s budget");
      } else {
        out->Add(Severity::kError, RuleId::kMO050_NotOptimal,
                 "exhaustive search failed on a graph that has a plan: " +
                     brute.status().ToString());
      }
      return;
    }

    double plan_cost = AnnotationCost(ctx.graph, *ctx.annotation, ctx.catalog,
                                      *ctx.model, ctx.cluster);
    double optimum = brute.value().cost;
    double tolerance =
        ctx.options.optimality_rel_tolerance * std::max(optimum, 1.0);
    if (std::fabs(plan_cost - optimum) > tolerance) {
      std::ostringstream msg;
      msg << "plan costs " << plan_cost << "s but the brute-force optimum is "
          << optimum << "s ("
          << (plan_cost > optimum ? "DP missed the optimum"
                                  : "plan beats exhaustive search — cost "
                                    "accounting is inconsistent")
          << ")";
      out->Add(Severity::kError, RuleId::kMO050_NotOptimal, msg.str());
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeOptimalityCheckPass() {
  return std::make_unique<OptimalityCheckPass>();
}

}  // namespace matopt
