#include "analysis/dataflow.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "dist/partition.h"
#include "dist/routing.h"
#include "engine/relation.h"

namespace matopt {

DataflowResult RunSparsityDataflow(
    const ComputeGraph& graph, const std::unordered_map<int, double>* seeds) {
  DataflowResult result;
  result.vertex_sparsity.resize(graph.num_vertices());
  auto clamp01 = [](double s) { return std::max(0.0, std::min(1.0, s)); };
  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = graph.vertex(v);
    if (seeds != nullptr) {
      auto it = seeds->find(v);
      if (it != seeds->end()) {
        result.vertex_sparsity[v] = SparsityInterval::Point(clamp01(it->second));
        continue;
      }
    }
    if (vx.op == OpKind::kInput) {
      result.vertex_sparsity[v] = SparsityInterval::Point(clamp01(vx.sparsity));
      continue;
    }
    std::vector<SparsityInterval> in;
    std::vector<MatrixType> in_types;
    in.reserve(vx.inputs.size());
    in_types.reserve(vx.inputs.size());
    for (int u : vx.inputs) {
      in.push_back(result.vertex_sparsity[u]);
      in_types.push_back(graph.vertex(u).type);
    }
    result.vertex_sparsity[v] =
        TransferSparsity(vx.op, vx.scalar, in, in_types, vx.type);
  }
  return result;
}

namespace {

/// A dry relation (metadata grid) paired with the sound density interval
/// of the matrix it holds.
struct BoundRel {
  Relation rel;
  SparsityInterval density;
};

/// max over {0 <= nnz_i <= cap_i, sum nnz_i = total} of sum w_i * nnz_i:
/// fill the heaviest-weighted tuples first (adversarial skew).
double MaxWeightedNnz(std::vector<std::pair<double, double>> items,
                      double total) {
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double acc = 0.0;
  for (const auto& [w, cap] : items) {
    if (total <= 0.0) break;
    double take = std::min(cap, total);
    acc += w * take;
    total -= take;
  }
  return acc;
}

/// min of the same objective: park as many non-zeros as possible in the
/// lightest-weighted tuples.
double MinWeightedNnz(std::vector<std::pair<double, double>> items,
                      double total) {
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double acc = 0.0;
  for (const auto& [w, cap] : items) {
    if (total <= 0.0) break;
    double take = std::min(cap, total);
    acc += w * take;
    total -= take;
  }
  return acc;
}

/// Derives the byte bounds of one routed stage. Dense tuples serialize at
/// exactly 8 bytes/entry; sparse tuples at 16 bytes/non-zero plus an
/// 8*rows index. Only the total non-zero count of each argument matrix is
/// bounded (by its density interval), so every aggregate maximizes /
/// minimizes over adversarial placements of those non-zeros across chunks.
StageBounds BoundStage(std::string label, int vertex, int edge_arg,
                       const std::vector<const BoundRel*>& args,
                       const dist::StagePlan& plan, int num_workers) {
  StageBounds b;
  b.label = std::move(label);
  b.vertex = vertex;
  b.edge_arg = edge_arg;
  b.tuples = plan.tuples;
  b.args.resize(args.size());
  // Per-worker remote shuffle inbound accumulators.
  std::vector<ByteInterval> inbound(num_workers);

  for (size_t j = 0; j < args.size(); ++j) {
    const Relation& rel = args[j]->rel;
    const SparsityInterval density = args[j]->density;
    const dist::StagePlan::Arg& ap = plan.args[j];
    const bool sparse = ap.sparse_layout;
    StageBounds::ArgBound& ab = b.args[j];
    ab.broadcast = ap.broadcast;

    const double e_total =
        static_cast<double>(rel.type.rows()) * static_cast<double>(rel.type.cols());
    const double n_lo = density.lo * e_total;
    const double n_hi = density.hi * e_total;

    double fixed_total = 0.0;     // 8*rows summed over all tuples
    double dense_total = 0.0;     // 8*entries summed over all tuples
    double remote_fixed = 0.0;    // 8*rows weighted by remote fanout
    double remote_dense = 0.0;    // 8*entries weighted by remote fanout
    std::vector<std::pair<double, double>> remote_items;  // (fanout, entries)
    remote_items.reserve(rel.tuples.size());
    std::vector<std::vector<std::pair<double, double>>> worker_items;
    std::vector<double> worker_fixed(num_workers, 0.0);
    std::vector<double> worker_dense(num_workers, 0.0);
    if (!ap.broadcast) worker_items.resize(num_workers);

    for (size_t i = 0; i < rel.tuples.size(); ++i) {
      const EngineTuple& t = rel.tuples[i];
      const double entries =
          static_cast<double>(t.rows) * static_cast<double>(t.cols);
      const double rows = static_cast<double>(t.rows);
      const int from = dist::DistWorkerOf(t, num_workers);
      double fanout = 0.0;
      for (int to : ap.dests[i]) {
        if (to == from) continue;
        fanout += 1.0;
        if (!ap.broadcast) {
          worker_fixed[to] += 8.0 * rows;
          worker_dense[to] += 8.0 * entries;
          worker_items[to].emplace_back(1.0, entries);
        }
      }
      fixed_total += 8.0 * rows;
      dense_total += 8.0 * entries;
      remote_fixed += fanout * 8.0 * rows;
      remote_dense += fanout * 8.0 * entries;
      remote_items.emplace_back(fanout, entries);

      // Largest / smallest this tuple can get vs single_tuple_cap_bytes: a
      // tuple must hold at least the non-zeros that do not fit elsewhere.
      double t_hi = sparse ? 16.0 * std::min(entries, n_hi) + 8.0 * rows
                           : 8.0 * entries;
      double t_lo =
          sparse ? 16.0 * std::max(0.0, n_lo - (e_total - entries)) + 8.0 * rows
                 : 8.0 * entries;
      ab.max_tuple_bytes.hi = std::max(ab.max_tuple_bytes.hi, t_hi);
      ab.max_tuple_bytes.lo = std::max(ab.max_tuple_bytes.lo, t_lo);
    }

    ab.total_bytes = sparse
                         ? ByteInterval{16.0 * n_lo + fixed_total,
                                        16.0 * n_hi + fixed_total}
                         : ByteInterval{dense_total, dense_total};

    ByteInterval moved =
        sparse ? ByteInterval{16.0 * MinWeightedNnz(remote_items, n_lo) +
                                  remote_fixed,
                              16.0 * MaxWeightedNnz(remote_items, n_hi) +
                                  remote_fixed}
               : ByteInterval{remote_dense, remote_dense};
    if (ap.broadcast) {
      b.broadcast_bytes.lo += moved.lo;
      b.broadcast_bytes.hi += moved.hi;
    } else {
      b.shuffle_bytes.lo += moved.lo;
      b.shuffle_bytes.hi += moved.hi;
      for (int w = 0; w < num_workers; ++w) {
        if (sparse) {
          inbound[w].lo += 16.0 * MinWeightedNnz(worker_items[w], n_lo) +
                           worker_fixed[w];
          inbound[w].hi += 16.0 * MaxWeightedNnz(worker_items[w], n_hi) +
                           worker_fixed[w];
        } else {
          inbound[w].lo += worker_dense[w];
          inbound[w].hi += worker_dense[w];
        }
      }
    }
  }

  for (const ByteInterval& w : inbound) {
    b.max_worker_inbound.lo = std::max(b.max_worker_inbound.lo, w.lo);
    b.max_worker_inbound.hi = std::max(b.max_worker_inbound.hi, w.hi);
  }
  return b;
}

const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }

}  // namespace

Result<std::vector<StageBounds>> ComputeDistStageBounds(
    const Catalog& catalog, const ClusterConfig& cluster,
    const ComputeGraph& graph, const Annotation& annotation,
    const DataflowResult& flow, int num_workers,
    const std::unordered_map<int, double>* input_sparsity) {
  if (num_workers < 1) {
    return Status::InvalidArgument("stage bounds need >= 1 worker");
  }
  if (static_cast<int>(annotation.vertices.size()) != graph.num_vertices()) {
    return Status::InvalidArgument(
        "annotation shape does not match the graph");
  }
  std::vector<StageBounds> out;
  std::unordered_map<int, BoundRel> rels;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = graph.vertex(v);
    if (vx.op == OpKind::kInput) {
      double s = vx.sparsity;
      if (input_sparsity != nullptr) {
        auto it = input_sparsity->find(v);
        if (it != input_sparsity->end()) s = it->second;
      }
      rels.emplace(v, BoundRel{MakeDryRelation(vx.type, vx.input_format, s,
                                               cluster),
                               flow.at(v)});
      continue;
    }
    const VertexAnnotation& va = annotation.at(v);
    if (va.input_edges.size() != vx.inputs.size()) {
      return Status::InvalidArgument("annotation lists wrong edge count at v" +
                                     std::to_string(v));
    }
    for (int u : vx.inputs) {
      if (u < 0 || u >= v) {
        return Status::InvalidArgument("graph is not in topological order");
      }
    }

    // Per-edge transformations, each its own exchange stage — mirrors
    // RunTransformStage: same label, same target format, same grid.
    std::vector<BoundRel> transformed;
    transformed.reserve(vx.inputs.size());
    std::vector<const BoundRel*> args;
    for (size_t j = 0; j < vx.inputs.size(); ++j) {
      const BoundRel& in = rels.at(vx.inputs[j]);
      if (!va.input_edges[j].transform.has_value()) {
        args.push_back(&in);
        continue;
      }
      TransformKind kind = *va.input_edges[j].transform;
      std::string label = "v" + std::to_string(v) + ".arg" + std::to_string(j) +
                          ":transform:" + TransformKindName(kind);
      ArgInfo arg{in.rel.type, in.rel.format, in.rel.sparsity};
      auto target = catalog.TransformOutputFormat(kind, arg, cluster);
      if (!target.has_value()) {
        return Status::TypeError(std::string("transformation ") +
                                 TransformKindName(kind) +
                                 " is infeasible for this relation");
      }
      const Format& src_fmt = FormatOf(in.rel.format);
      const Format& dst_fmt = FormatOf(*target);
      double out_sparsity = dst_fmt.sparse() ? in.rel.sparsity : 1.0;
      Relation skeleton =
          MakeDryRelation(in.rel.type, *target, out_sparsity, cluster);
      dist::OwnerMap owners = dist::MapOwners(skeleton, num_workers);
      std::vector<dist::KeyFn> keyfns;
      keyfns.push_back(dist::GridOverlapKeyFn(in.rel.type, src_fmt, dst_fmt));
      dist::StagePlan plan =
          dist::RouteStage({&in.rel}, {dist::Route::kIdentity}, keyfns, owners,
                           num_workers);
      out.push_back(BoundStage(std::move(label), v, static_cast<int>(j), {&in},
                               plan, num_workers));
      // A transformation re-chunks the same matrix values, so the density
      // interval passes through unchanged.
      transformed.push_back(BoundRel{std::move(skeleton), in.density});
      args.push_back(&transformed.back());
    }

    // The implementation stage, mirroring RunPass's impl skeleton.
    std::string label =
        "v" + std::to_string(v) + ":" + ImplKindName(va.impl);
    double out_sparsity =
        FormatOf(va.output_format).sparse() ? vx.sparsity : 1.0;
    Relation skeleton =
        MakeDryRelation(vx.type, va.output_format, out_sparsity, cluster);
    dist::OwnerMap owners = dist::MapOwners(skeleton, num_workers);
    std::vector<dist::Route> routes = dist::RoutesFor(va.impl);
    if (routes.size() != args.size()) {
      return Status::InvalidArgument(
          std::string(ImplKindName(va.impl)) +
          " has the wrong arity for the op at v" + std::to_string(v));
    }
    std::vector<dist::KeyFn> keyfns;
    keyfns.reserve(routes.size());
    for (dist::Route r : routes) {
      keyfns.push_back(dist::KeyFnFor(r, owners.nr, owners.nc));
    }
    std::vector<const Relation*> arg_rels;
    arg_rels.reserve(args.size());
    for (const BoundRel* a : args) arg_rels.push_back(&a->rel);
    dist::StagePlan plan =
        dist::RouteStage(arg_rels, routes, keyfns, owners, num_workers);
    out.push_back(
        BoundStage(std::move(label), v, -1, args, plan, num_workers));
    rels.emplace(v, BoundRel{std::move(skeleton), flow.at(v)});
  }
  return out;
}

}  // namespace matopt
