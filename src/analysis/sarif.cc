#include "analysis/sarif.h"

#include <sstream>

namespace matopt {

namespace {

std::string JsonEscape(const std::string& s) {
  std::ostringstream out;
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "none";
}

}  // namespace

std::string RenderDiagnosticsJson(const std::vector<FileDiagnostics>& files) {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"files\": [";
  for (size_t f = 0; f < files.size(); ++f) {
    out << (f == 0 ? "\n" : ",\n");
    out << "    {\n      \"path\": \"" << JsonEscape(files[f].path)
        << "\",\n      \"diagnostics\": [";
    const auto& diags = files[f].diagnostics.diagnostics();
    for (size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "        { \"rule\": \"" << RuleIdName(d.rule)
          << "\", \"severity\": \"" << SeverityName(d.severity)
          << "\", \"message\": \"" << JsonEscape(d.message)
          << "\", \"vertex\": " << d.vertex
          << ", \"edge_arg\": " << d.edge_arg << ", \"line\": " << d.line
          << ", \"column\": " << d.column << " }";
    }
    out << (diags.empty() ? "]" : "\n      ]") << "\n    }";
  }
  out << (files.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string RenderDiagnosticsSarif(const std::vector<FileDiagnostics>& files) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"matopt_lint\",\n"
      << "          \"rules\": [";
  std::vector<RuleId> rules = AllRuleIds();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            { \"id\": \"" << RuleIdName(rules[i])
        << "\", \"shortDescription\": { \"text\": \""
        << JsonEscape(RuleIdDescription(rules[i])) << "\" } }";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  bool first = true;
  for (const FileDiagnostics& file : files) {
    for (const Diagnostic& d : file.diagnostics.diagnostics()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        {\n"
          << "          \"ruleId\": \"" << RuleIdName(d.rule) << "\",\n"
          << "          \"level\": \"" << SarifLevel(d.severity) << "\",\n"
          << "          \"message\": { \"text\": \"" << JsonEscape(d.message)
          << "\" },\n"
          << "          \"locations\": [\n"
          << "            {\n"
          << "              \"physicalLocation\": {\n"
          << "                \"artifactLocation\": { \"uri\": \""
          << JsonEscape(file.path) << "\" }";
      if (d.line > 0) {
        out << ",\n                \"region\": { \"startLine\": " << d.line;
        if (d.column > 0) out << ", \"startColumn\": " << d.column;
        out << " }";
      }
      out << "\n              }\n"
          << "            }\n"
          << "          ]\n"
          << "        }";
    }
  }
  out << (first ? "]" : "\n      ]") << "\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace matopt
