#include "analysis/rewrite_check.h"

#include <string>

#include "analysis/dataflow.h"
#include "analysis/domains.h"

namespace matopt {

void AnalyzeRewrite(const ComputeGraph& original, const RewrittenPlan& plan,
                    DiagnosticList* diagnostics) {
  if (plan.budget_hit) {
    diagnostics->Add(Severity::kNote, RuleId::kMO081_RewriteBudgetHit,
                     "rewrite enumeration stopped at its saturation budget "
                     "after " +
                         std::to_string(plan.candidates_considered) +
                         " candidates");
  }
  if (!plan.rewritten) return;

  const DataflowResult before = RunSparsityDataflow(original);
  const DataflowResult after = RunSparsityDataflow(plan.graph);
  for (int s : original.Sinks()) {
    const Vertex& sink = original.vertex(s);
    const int ms = s < static_cast<int>(plan.vertex_map.size())
                       ? plan.vertex_map[s]
                       : -1;
    if (ms < 0 || ms >= plan.graph.num_vertices()) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.rule = RuleId::kMO080_RewriteSparsityMismatch;
      d.message = "rewrite chain [" + plan.ChainString() +
                  "] dropped output '" + sink.name + "'";
      d.vertex = s;
      d.line = sink.src_line;
      d.column = sink.src_column;
      diagnostics->Add(std::move(d));
      continue;
    }
    const SparsityInterval& a = before.at(s);
    const SparsityInterval& b = after.at(ms);
    if (a.lo <= b.hi + 1e-9 && b.lo <= a.hi + 1e-9) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = RuleId::kMO080_RewriteSparsityMismatch;
    d.message = "output '" + sink.name + "': rewritten sparsity interval [" +
                std::to_string(b.lo) + ", " + std::to_string(b.hi) +
                "] is disjoint from the original [" + std::to_string(a.lo) +
                ", " + std::to_string(a.hi) + "] (chain: " +
                plan.ChainString() + ")";
    d.vertex = s;
    d.line = sink.src_line;
    d.column = sink.src_column;
    diagnostics->Add(std::move(d));
  }
}

}  // namespace matopt
