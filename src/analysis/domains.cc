#include "analysis/domains.h"

#include <algorithm>

namespace matopt {

namespace {

double Entries(const MatrixType& t) {
  return static_cast<double>(t.rows()) * static_cast<double>(t.cols());
}

/// Converts a non-zero-count interval back to a density interval over a
/// matrix with `entries` positions, clamping into the representable range.
SparsityInterval FromNnz(double lo, double hi, double entries) {
  if (entries <= 0.0) return SparsityInterval::Point(0.0);
  lo = std::max(0.0, std::min(lo, entries));
  hi = std::max(0.0, std::min(hi, entries));
  if (lo > hi) lo = hi;
  return {lo / entries, hi / entries};
}

}  // namespace

SparsityInterval TransferSparsity(OpKind op, double scalar,
                                  const std::vector<SparsityInterval>& in,
                                  const std::vector<MatrixType>& in_types,
                                  const MatrixType& out_type) {
  if (in.size() != in_types.size() ||
      static_cast<int>(in.size()) != OpArity(op)) {
    return SparsityInterval::Top();
  }
  const double e_out = Entries(out_type);
  if (e_out <= 0.0) return SparsityInterval::Point(0.0);
  // Non-zero-count endpoints of each argument.
  auto nnz_lo = [&](size_t i) { return in[i].lo * Entries(in_types[i]); };
  auto nnz_hi = [&](size_t i) { return in[i].hi * Entries(in_types[i]); };

  switch (op) {
    case OpKind::kInput:
      return SparsityInterval::Top();
    case OpKind::kMatMul: {
      // out[i,j] != 0 needs a non-empty row i of A and column j of B, so
      // the support fits in (non-empty A rows) x (non-empty B cols). Sums
      // of products may cancel (or every product may vanish), so lo = 0.
      const double m = static_cast<double>(out_type.rows());
      const double n = static_cast<double>(out_type.cols());
      const double hi =
          std::min(m, nnz_hi(0)) * std::min(n, nnz_hi(1));
      return FromNnz(0.0, hi, e_out);
    }
    case OpKind::kAdd:
    case OpKind::kSub: {
      // Positions where exactly one operand is non-zero are non-zero (x+0
      // = x under IEEE); overlapping positions may cancel.
      const double lo =
          std::max({0.0, nnz_lo(0) - nnz_hi(1), nnz_lo(1) - nnz_hi(0)});
      return FromNnz(lo, nnz_hi(0) + nnz_hi(1), e_out);
    }
    case OpKind::kHadamard: {
      // support(A .* B) is contained in support(A) ∩ support(B); products
      // of two non-zeros are non-zero up to gradual underflow.
      const double lo = std::max(0.0, nnz_lo(0) + nnz_lo(1) - e_out);
      return FromNnz(lo, std::min(nnz_hi(0), nnz_hi(1)), e_out);
    }
    case OpKind::kElemDiv: {
      // A/B is zero exactly when A = 0 and B != 0 (0/0 = NaN and x/0 =
      // ±inf both count as stored non-zeros).
      const double e_a = Entries(in_types[0]);
      const double zeros_hi = std::min(e_a - nnz_lo(0), nnz_hi(1));
      const double zeros_lo = std::max(0.0, nnz_lo(1) - nnz_hi(0));
      return FromNnz(e_out - zeros_hi, e_out - zeros_lo, e_out);
    }
    case OpKind::kScalarMul:
      // c * 0 = 0 always; c * x for non-zero x can underflow to 0 (and
      // with c = 0, c * ±inf is NaN), so only the zeros are guaranteed.
      if (scalar == 0.0) return FromNnz(0.0, nnz_hi(0), e_out);
      return FromNnz(nnz_lo(0), nnz_hi(0), e_out);
    case OpKind::kTranspose:
      return FromNnz(nnz_lo(0), nnz_hi(0), e_out);
    case OpKind::kRelu:
      // relu(0) = 0, so zeros survive; positives may all be clipped.
      return FromNnz(0.0, nnz_hi(0), e_out);
    case OpKind::kReluGrad:
      // g masked by z > 0: zero wherever z = 0 or g = 0.
      return FromNnz(0.0, std::min(nnz_hi(0), nnz_hi(1)), e_out);
    case OpKind::kSoftmax:
    case OpKind::kSigmoid:
    case OpKind::kExp:
    case OpKind::kInverse:
      // Densifying in real arithmetic, but IEEE underflow can still emit
      // exact zeros (exp(-746) == 0, sigmoid(-800) == 0), so lo stays 0.
      return SparsityInterval::Top();
    case OpKind::kRowSum: {
      // A row sum is non-zero only if the row is non-empty; non-empty
      // rows may still cancel to zero.
      const double m = static_cast<double>(out_type.rows());
      return FromNnz(0.0, std::min(m, nnz_hi(0)), e_out);
    }
    case OpKind::kColSum: {
      const double n = static_cast<double>(out_type.cols());
      return FromNnz(0.0, std::min(n, nnz_hi(0)), e_out);
    }
    case OpKind::kBroadcastRowAdd: {
      // A[i,j] + b[j]: exactly-one-non-zero positions survive; positions
      // where both are non-zero may cancel. b[j] != 0 touches a whole
      // column (rows many positions).
      const double m = static_cast<double>(out_type.rows());
      const double b_lo = m * nnz_lo(1);
      const double b_hi = m * nnz_hi(1);
      const double lo = std::max({0.0, nnz_lo(0) - b_hi, b_lo - nnz_hi(0)});
      return FromNnz(lo, nnz_hi(0) + b_hi, e_out);
    }
  }
  return SparsityInterval::Top();
}

ByteInterval RelationByteBounds(const MatrixType& type, const Format& format,
                                SparsityInterval sparsity) {
  const double entries = Entries(type);
  if (!format.sparse()) {
    // Dense layouts serialize every entry: 8 bytes each, independent of
    // density — the bound is exact.
    return {8.0 * entries, 8.0 * entries};
  }
  // Sparse layouts: 16 bytes per stored non-zero plus an 8-bytes-per-row
  // index per chunk. The chunk grid is metadata (GridFor ignores density),
  // so the fixed index part sums to 8 * rows * (#column chunks).
  int64_t col_chunks = 1;
  switch (format.layout) {
    case Layout::kSpColStripsCsc:
      col_chunks = NumChunks(type.cols(), format.p1);
      break;
    case Layout::kSpTilesCsr:
      col_chunks = NumChunks(type.cols(), format.p1);
      break;
    default:
      break;  // single-chunk and row-strip sparse layouts: one column chunk
  }
  const double fixed =
      8.0 * static_cast<double>(type.rows()) * static_cast<double>(col_chunks);
  const double lo = std::max(0.0, std::min(1.0, sparsity.lo)) * entries;
  const double hi = std::max(0.0, std::min(1.0, sparsity.hi)) * entries;
  return {16.0 * lo + fixed, 16.0 * hi + fixed};
}

}  // namespace matopt
