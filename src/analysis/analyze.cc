#include "analysis/analyze.h"

namespace matopt {

DiagnosticList AnalyzeGraph(const ComputeGraph& graph, const Catalog& catalog,
                            const ClusterConfig& cluster,
                            const AnalysisOptions& options) {
  AnalysisContext ctx{graph, catalog, cluster, nullptr, nullptr, options};
  return DefaultPipeline().Run(ctx);
}

DiagnosticList AnalyzePlan(const ComputeGraph& graph,
                           const Annotation& annotation,
                           const Catalog& catalog, const CostModel* model,
                           const ClusterConfig& cluster,
                           const AnalysisOptions& options,
                           bool check_optimality) {
  AnalysisContext ctx{graph, catalog, cluster, &annotation, model, options};
  return DefaultPipeline(check_optimality).Run(ctx);
}

Status VerifySearchResult(const ComputeGraph& graph,
                          const Annotation& annotation, const Catalog& catalog,
                          const CostModel& model,
                          const ClusterConfig& cluster) {
  DiagnosticList diagnostics =
      AnalyzePlan(graph, annotation, catalog, &model, cluster);
  if (!diagnostics.HasErrors()) return Status::OK();
  Status first = diagnostics.ToStatus();
  return Status::Internal("optimizer produced an invalid plan: " +
                          first.message());
}

}  // namespace matopt
