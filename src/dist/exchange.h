#ifndef MATOPT_DIST_EXCHANGE_H_
#define MATOPT_DIST_EXCHANGE_H_

#include <string>
#include <vector>

#include "dist/transport.h"

namespace matopt::dist {

/// Repartitioning exchange: each source tuple travels, unchanged, to the
/// destination workers the move plan computed from its chunk key.
/// Self-deliveries stay in a worker-local list and off the wire (they are
/// counted separately); remote deliveries go through the transport under
/// the owning relation's layout. Follows the transport's phased threading
/// contract: Route from the sender's thread, barrier, Gather from the
/// receiver's thread.
class ShuffleExchange {
 public:
  ShuffleExchange(Transport& transport, std::string label, int num_workers,
                  bool sparse_layout);

  /// Delivers `tuple`, owned by worker `from`, to worker `to`.
  Status Route(int from, int to, const EngineTuple& tuple);

  /// Collects everything delivered to worker `to` — local list plus the
  /// rank-ordered transport drain — sorted into canonical (row, col) key
  /// order. Chunk keys are unique within a relation, so the gathered
  /// sequence is fully deterministic.
  Result<std::vector<EngineTuple>> Gather(int to);

  /// Cross-worker traffic so far (what a wire would carry).
  ChannelStats remote_totals() const { return exchange_->Totals(); }

  /// Same-worker deliveries (bytes never serialized).
  ChannelStats local_totals() const;

  int num_workers() const { return num_workers_; }

 private:
  std::unique_ptr<Exchange> exchange_;
  int num_workers_;
  bool sparse_layout_;
  // Indexed by worker rank; each slot touched only by that worker's
  // thread during the send phase, read after the barrier.
  std::vector<std::vector<EngineTuple>> local_;
  std::vector<ChannelStats> local_stats_;
};

/// Replicating exchange: every broadcast tuple reaches all workers. The
/// planner enforces broadcast_cap_bytes before opening one of these; the
/// exchange just replicates (one local delivery plus num_workers - 1
/// remote sends per tuple).
class BroadcastExchange {
 public:
  BroadcastExchange(Transport& transport, std::string label, int num_workers,
                    bool sparse_layout);

  /// Replicates `tuple`, owned by worker `from`, to every worker.
  Status Broadcast(int from, const EngineTuple& tuple);

  /// Worker `to`'s replica set, in canonical key order.
  Result<std::vector<EngineTuple>> Gather(int to);

  ChannelStats remote_totals() const { return shuffle_.remote_totals(); }
  ChannelStats local_totals() const { return shuffle_.local_totals(); }

 private:
  ShuffleExchange shuffle_;
};

}  // namespace matopt::dist

#endif  // MATOPT_DIST_EXCHANGE_H_
