#ifndef MATOPT_DIST_TRANSPORT_H_
#define MATOPT_DIST_TRANSPORT_H_

#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/relation.h"

namespace matopt::dist {

/// Cumulative traffic counters of one channel (or one whole exchange /
/// transport): messages delivered, tuples carried, and payload bytes as
/// they would appear on a real wire under the owning relation's layout.
struct ChannelStats {
  int64_t messages = 0;
  int64_t tuples = 0;
  double bytes = 0.0;

  void Add(const ChannelStats& other) {
    messages += other.messages;
    tuples += other.tuples;
    bytes += other.bytes;
  }
};

/// One routed tuple. The in-memory transport hands the payload over by
/// shared pointer; `bytes` is what a socket transport would serialize
/// (the tuple's Bytes() under the sending relation's layout).
struct TupleMessage {
  EngineTuple tuple;
  double bytes = 0.0;
};

/// One all-to-all data movement between the runtime workers. The engine
/// opens a fresh exchange per (stage, argument); senders and receivers
/// are runtime worker ranks in [0, num_workers).
///
/// Threading contract (phased): during the send phase `Send(from, ...)`
/// is called only by the thread driving worker `from`; a barrier
/// (ParallelFor join) separates sends from drains; during the drain phase
/// `Drain(to)` is called only by the thread driving worker `to`. Counter
/// reads (`Totals`, `Channel`) happen after the drain barrier.
class Exchange {
 public:
  virtual ~Exchange() = default;

  /// Enqueues one message from worker `from` to worker `to`. Never blocks;
  /// a bounded transport reports budget violations as typed errors
  /// (kOutOfMemory) instead of back-pressure, matching the simulated
  /// engine's fail-fast spill semantics.
  virtual Status Send(int from, int to, TupleMessage message) = 0;

  /// Drains every message addressed to worker `to` in rank order: all of
  /// sender 0's messages in send order, then sender 1's, and so on. The
  /// deterministic drain order is part of the runtime's bit-identical
  /// execution argument (DESIGN.md §12).
  virtual Result<std::vector<TupleMessage>> Drain(int to) = 0;

  /// Traffic of the (from -> to) channel so far.
  virtual ChannelStats Channel(int from, int to) const = 0;

  /// Traffic summed over all channels.
  virtual ChannelStats Totals() const = 0;

  virtual int num_workers() const = 0;
  virtual const std::string& label() const = 0;
};

/// Budgets an in-memory transport enforces. Defaults are unbounded; the
/// engine wires these from ClusterConfig (worker_spill_bytes bounds a
/// receiver's buffered inbound bytes, single_tuple_cap_bytes each
/// message).
struct TransportLimits {
  double channel_capacity_bytes = std::numeric_limits<double>::infinity();
  double single_tuple_cap_bytes = std::numeric_limits<double>::infinity();
};

/// Factory for exchanges. The first implementation is in-memory; the
/// interface is what a socket transport would implement instead (same
/// phased Send/Drain protocol, serialized payloads).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::unique_ptr<Exchange> OpenExchange(std::string label,
                                                 int num_workers) = 0;
};

/// Bounded in-memory channels: one mailbox per (sender, receiver) pair
/// with per-channel byte/tuple/message counters. Payloads are shared, not
/// copied; `bytes` still accounts the serialized size so measurements
/// match what a wire transport would report.
class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport() = default;
  explicit InMemoryTransport(TransportLimits limits) : limits_(limits) {}

  std::unique_ptr<Exchange> OpenExchange(std::string label,
                                         int num_workers) override;

  /// Traffic accumulated across all exchanges this transport has opened
  /// (updated when an exchange is destroyed).
  ChannelStats lifetime_totals() const;

 private:
  friend class InMemoryExchange;
  void Retire(const ChannelStats& totals);

  TransportLimits limits_;
  mutable std::mutex mu_;
  ChannelStats lifetime_;
};

}  // namespace matopt::dist

#endif  // MATOPT_DIST_TRANSPORT_H_
