#ifndef MATOPT_DIST_ROUTING_H_
#define MATOPT_DIST_ROUTING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/format/format.h"
#include "core/ops/catalog.h"
#include "engine/cluster.h"
#include "engine/relation.h"

namespace matopt::dist {

/// Routing: which output chunk keys need each argument tuple. The owner of
/// an output key comes from the output skeleton, so the projection pass,
/// the data pass, and the static dataflow analyzer all derive identical
/// destinations from metadata alone — routing never looks at payloads or
/// densities, which is what makes the analyzer's per-stage byte intervals
/// line up with the runtime's stage records label for label.

uint64_t TupleKey(int64_t r, int64_t c);

enum class Route {
  kIdentity,       // arg key == out key (co-partitioned, never moves)
  kBroadcast,      // replicate to every worker
  kRowsToAllCols,  // (r, *) -> every out key in row r
  kColsToAllRows,  // (*, c) -> every out key in column c
  kAllToRoot,      // everything to the owner of out key (0, 0)
  kTransSwap,      // (r, c) -> out key (c, r)
  kTransRowToCol,  // (r, 0) -> out key (0, r)
  kTransColToRow,  // (0, c) -> out key (c, 0)
  kRowGroup,       // (r, *) -> out key (r, 0)
  kColGroup,       // (*, c) -> out key (0, c)
};

/// Per-argument routes of an implementation's exchange stage.
std::vector<Route> RoutesFor(ImplKind kind);

/// Produces the out keys an arg tuple is needed at. kBroadcast never
/// consults the key fn: its destinations are every worker.
using KeyFn = std::function<void(const EngineTuple&,
                                 std::vector<std::pair<int64_t, int64_t>>*)>;

KeyFn KeyFnFor(Route route, int64_t nr_out, int64_t nc_out);

/// Grid-overlap routing for format transformations: a source chunk is
/// needed by every target chunk whose region it intersects.
KeyFn GridOverlapKeyFn(const MatrixType& type, const Format& src_fmt,
                       const Format& dst_fmt);

/// Out-key -> owning runtime worker, from the output skeleton.
struct OwnerMap {
  std::unordered_map<uint64_t, int> owner;
  int64_t nr = 0;
  int64_t nc = 0;
};

OwnerMap MapOwners(const Relation& skeleton, int num_workers);

/// Move plan of one stage: per argument, the destination workers of every
/// tuple plus the traffic this routing implies.
struct StagePlan {
  struct Arg {
    bool broadcast = false;
    bool sparse_layout = false;
    std::vector<std::vector<int>> dests;  // per tuple, sorted ranks
  };
  std::vector<Arg> args;
  double shuffle_bytes = 0.0;    // remote, non-broadcast args
  double broadcast_bytes = 0.0;  // remote, broadcast args
  double tuples = 0.0;           // all deliveries incl. local
};

/// Pure routing: destination workers per tuple and the delivery count
/// (both functions of relation metadata only — no byte accounting, no
/// budget enforcement). Cannot fail.
StagePlan RouteStage(const std::vector<const Relation*>& args,
                     const std::vector<Route>& routes,
                     const std::vector<KeyFn>& keyfns, const OwnerMap& owners,
                     int num_workers);

/// Full stage planning for the runtime passes: routes, then accounts the
/// shuffle/broadcast bytes this plan moves and enforces the cluster
/// budgets (broadcast_cap_bytes per replicated relation,
/// single_tuple_cap_bytes per routed tuple, worker_spill_bytes on a
/// worker's remote shuffle inbound). Built the same way by the projection
/// pass (estimated sparsity) and the data pass (measured sparsity); budget
/// enforcement happens here, on the coordinator, before anything is sent —
/// so violations are deterministic typed errors, never a worker-dependent
/// race.
Result<StagePlan> PlanStage(const std::string& label,
                            const std::vector<const Relation*>& args,
                            const std::vector<Route>& routes,
                            const std::vector<KeyFn>& keyfns,
                            const OwnerMap& owners,
                            const ClusterConfig& cluster, int num_workers);

}  // namespace matopt::dist

#endif  // MATOPT_DIST_ROUTING_H_
