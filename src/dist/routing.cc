#include "dist/routing.h"

#include <algorithm>

#include "dist/partition.h"

namespace matopt::dist {

namespace {
const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }
}  // namespace

uint64_t TupleKey(int64_t r, int64_t c) {
  return (static_cast<uint64_t>(r) << 32) | static_cast<uint64_t>(c);
}

std::vector<Route> RoutesFor(ImplKind kind) {
  switch (kind) {
    case ImplKind::kMmSingleSingle:
    case ImplKind::kMmSpSingleXSingle:
    case ImplKind::kGpuMmSingleSingle:
    case ImplKind::kAddZip:
    case ImplKind::kSubZip:
    case ImplKind::kHadamardZip:
    case ImplKind::kElemDivZip:
    case ImplKind::kReluGradZip:
    case ImplKind::kAddSparseZip:
      return {Route::kIdentity, Route::kIdentity};
    case ImplKind::kMmRowStripsXBcastSingle:
    case ImplKind::kMmSpRowStripsXBcastSingle:
    case ImplKind::kGpuMmRowStripsXBcastSingle:
    case ImplKind::kMmRowStripsXBcastColStrips:
    case ImplKind::kMmSpRowStripsXTiles:
    case ImplKind::kBroadcastRowAddBcastVec:
      return {Route::kIdentity, Route::kBroadcast};
    case ImplKind::kMmBcastSingleXColStrips:
    case ImplKind::kMmSpSingleXColStrips:
    case ImplKind::kGpuMmBcastSingleXColStrips:
      return {Route::kBroadcast, Route::kIdentity};
    case ImplKind::kMmCrossStrips:
    case ImplKind::kMmTilesShuffle:
      return {Route::kRowsToAllCols, Route::kColsToAllRows};
    case ImplKind::kMmBcastTilesXTiles:
      return {Route::kBroadcast, Route::kColsToAllRows};
    case ImplKind::kMmTilesXBcastTiles:
      return {Route::kRowsToAllCols, Route::kBroadcast};
    case ImplKind::kMmColStripsXRowStripsOuterSum:
      return {Route::kAllToRoot, Route::kAllToRoot};
    case ImplKind::kScalarMulMap:
    case ImplKind::kReluMap:
    case ImplKind::kSigmoidMap:
    case ImplKind::kExpMap:
    case ImplKind::kSoftmaxRowStrips:
    case ImplKind::kSoftmaxSingle:
      return {Route::kIdentity};
    case ImplKind::kTransposeSingle:
    case ImplKind::kTransposeTiles:
      return {Route::kTransSwap};
    case ImplKind::kTransposeRowToCol:
      return {Route::kTransRowToCol};
    case ImplKind::kTransposeColToRow:
      return {Route::kTransColToRow};
    case ImplKind::kRowSumRowStrips:
    case ImplKind::kRowSumTilesAgg:
      return {Route::kRowGroup};
    case ImplKind::kColSumColStrips:
    case ImplKind::kColSumTilesAgg:
      return {Route::kColGroup};
    case ImplKind::kRowSumSingle:
    case ImplKind::kColSumSingle:
    case ImplKind::kInverseSingleLu:
    case ImplKind::kInverseGatherLu:
    case ImplKind::kGpuInverseSingleLu:
      return {Route::kAllToRoot};
  }
  return {};
}

KeyFn KeyFnFor(Route route, int64_t nr_out, int64_t nc_out) {
  switch (route) {
    case Route::kIdentity:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(t.r, t.c);
      };
    case Route::kRowsToAllCols:
      return [nc_out](const EngineTuple& t, auto* keys) {
        for (int64_t j = 0; j < nc_out; ++j) keys->emplace_back(t.r, j);
      };
    case Route::kColsToAllRows:
      return [nr_out](const EngineTuple& t, auto* keys) {
        for (int64_t i = 0; i < nr_out; ++i) keys->emplace_back(i, t.c);
      };
    case Route::kAllToRoot:
      return [](const EngineTuple&, auto* keys) { keys->emplace_back(0, 0); };
    case Route::kTransSwap:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(t.c, t.r);
      };
    case Route::kTransRowToCol:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(0, t.r);
      };
    case Route::kTransColToRow:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(t.c, 0);
      };
    case Route::kRowGroup:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(t.r, 0);
      };
    case Route::kColGroup:
      return [](const EngineTuple& t, auto* keys) {
        keys->emplace_back(0, t.c);
      };
    case Route::kBroadcast:
      return [](const EngineTuple&, auto*) {};
  }
  return [](const EngineTuple&, auto*) {};
}

KeyFn GridOverlapKeyFn(const MatrixType& type, const Format& src_fmt,
                       const Format& dst_fmt) {
  ChunkDims sd = ChunkDimsFor(type, src_fmt);
  ChunkDims dd = ChunkDimsFor(type, dst_fmt);
  return [sd, dd](const EngineTuple& t, auto* keys) {
    int64_t r0 = (t.r * sd.rows) / dd.rows;
    int64_t r1 = (t.r * sd.rows + t.rows - 1) / dd.rows;
    int64_t c0 = (t.c * sd.cols) / dd.cols;
    int64_t c1 = (t.c * sd.cols + t.cols - 1) / dd.cols;
    for (int64_t i = r0; i <= r1; ++i) {
      for (int64_t j = c0; j <= c1; ++j) keys->emplace_back(i, j);
    }
  };
}

OwnerMap MapOwners(const Relation& skeleton, int num_workers) {
  OwnerMap m;
  m.owner.reserve(skeleton.tuples.size());
  for (const EngineTuple& t : skeleton.tuples) {
    m.owner[TupleKey(t.r, t.c)] = DistWorkerOf(t, num_workers);
    m.nr = std::max(m.nr, t.r + 1);
    m.nc = std::max(m.nc, t.c + 1);
  }
  return m;
}

StagePlan RouteStage(const std::vector<const Relation*>& args,
                     const std::vector<Route>& routes,
                     const std::vector<KeyFn>& keyfns, const OwnerMap& owners,
                     int num_workers) {
  StagePlan plan;
  plan.args.resize(args.size());
  std::vector<std::pair<int64_t, int64_t>> keys;
  for (size_t j = 0; j < args.size(); ++j) {
    StagePlan::Arg& ap = plan.args[j];
    ap.broadcast = routes[j] == Route::kBroadcast;
    ap.sparse_layout = FormatOf(args[j]->format).sparse();
    ap.dests.resize(args[j]->tuples.size());
    for (size_t i = 0; i < args[j]->tuples.size(); ++i) {
      const EngineTuple& t = args[j]->tuples[i];
      std::vector<int>& dests = ap.dests[i];
      if (ap.broadcast) {
        dests.resize(num_workers);
        for (int w = 0; w < num_workers; ++w) dests[w] = w;
      } else {
        keys.clear();
        keyfns[j](t, &keys);
        for (const auto& [r, c] : keys) {
          auto it = owners.owner.find(TupleKey(r, c));
          if (it == owners.owner.end()) continue;  // key outside the grid
          dests.push_back(it->second);
        }
        std::sort(dests.begin(), dests.end());
        dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
      }
      plan.tuples += static_cast<double>(dests.size());
    }
  }
  return plan;
}

Result<StagePlan> PlanStage(const std::string& label,
                            const std::vector<const Relation*>& args,
                            const std::vector<Route>& routes,
                            const std::vector<KeyFn>& keyfns,
                            const OwnerMap& owners,
                            const ClusterConfig& cluster, int num_workers) {
  StagePlan plan = RouteStage(args, routes, keyfns, owners, num_workers);
  // Remote shuffle bytes buffered by each receiving worker this stage.
  std::vector<double> inbound(num_workers, 0.0);
  for (size_t j = 0; j < args.size(); ++j) {
    const StagePlan::Arg& ap = plan.args[j];
    if (ap.broadcast && args[j]->TotalBytes() > cluster.broadcast_cap_bytes) {
      return Status::OutOfMemory(
          label + ": arg " + std::to_string(j) + " holds " +
          std::to_string(args[j]->TotalBytes()) +
          " bytes, too large to replicate (broadcast_cap_bytes)");
    }
    for (size_t i = 0; i < args[j]->tuples.size(); ++i) {
      const EngineTuple& t = args[j]->tuples[i];
      double bytes = t.Bytes(ap.sparse_layout);
      if (bytes > cluster.single_tuple_cap_bytes) {
        return Status::OutOfMemory(
            label + ": tuple (" + std::to_string(t.r) + "," +
            std::to_string(t.c) + ") of " + std::to_string(bytes) +
            " bytes exceeds single_tuple_cap_bytes");
      }
      int from = DistWorkerOf(t, num_workers);
      for (int to : ap.dests[i]) {
        if (to == from) continue;
        if (ap.broadcast) {
          plan.broadcast_bytes += bytes;
        } else {
          plan.shuffle_bytes += bytes;
          inbound[to] += bytes;
        }
      }
    }
  }
  for (int w = 0; w < num_workers; ++w) {
    if (inbound[w] > cluster.worker_spill_bytes) {
      return Status::OutOfMemory(
          label + ": worker " + std::to_string(w) + " would buffer " +
          std::to_string(inbound[w]) +
          " bytes of shuffle input, over worker_spill_bytes");
    }
  }
  return plan;
}

}  // namespace matopt::dist
