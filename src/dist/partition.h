#ifndef MATOPT_DIST_PARTITION_H_
#define MATOPT_DIST_PARTITION_H_

#include <vector>

#include "engine/relation.h"

namespace matopt::dist {

/// Runtime worker that owns a tuple when executing with `num_workers`
/// in-process workers. Every tuple already carries its simulated-cluster
/// placement (EngineTuple::worker, from the WorkerFor hash); folding that
/// placement modulo the runtime worker count keeps shard ownership a pure
/// function of the chunk key, so every pass — planning, sending,
/// computing — agrees on it at any worker count.
int DistWorkerOf(const EngineTuple& tuple, int num_workers);

/// Tuple indices of each worker's shard, in relation (row-major key)
/// order. Shards may be empty when there are more workers than tuples.
std::vector<std::vector<int>> ShardIndices(const Relation& relation,
                                           int num_workers);

/// Payload bytes resident on each worker's shard, under the relation's
/// layout.
std::vector<double> ShardBytes(const Relation& relation, int num_workers);

/// Shard imbalance: max shard bytes / mean shard bytes. 1.0 is perfectly
/// balanced; `num_workers` means one worker holds everything. Empty
/// relations report 1.0 (nothing to balance).
double ShardSkew(const Relation& relation, int num_workers);

}  // namespace matopt::dist

#endif  // MATOPT_DIST_PARTITION_H_
