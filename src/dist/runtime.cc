#include "dist/runtime.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/format/format.h"
#include "dist/exchange.h"
#include "dist/partition.h"
#include "dist/routing.h"
#include "engine/relation.h"
#include "la/kernels.h"
#include "la/shard_kernels.h"
#include "la/sparse_matrix.h"

namespace matopt::dist {

namespace {

const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }

using TupleMap = std::unordered_map<uint64_t, const EngineTuple*>;

TupleMap MapTuples(const std::vector<EngineTuple>& tuples) {
  TupleMap map;
  map.reserve(tuples.size());
  for (const EngineTuple& t : tuples) map[TupleKey(t.r, t.c)] = &t;
  return map;
}

// ---------------------------------------------------------------------
// Shard-local compute. Each case mirrors the exact kernel sequence of the
// single-node data path (executor.cc) — same kernels, same accumulation
// order — which is what keeps distributed sinks bit-identical to
// single-node execution at any worker count.

Result<const EngineTuple*> Find(const TupleMap& m, int64_t r, int64_t c) {
  auto it = m.find(TupleKey(r, c));
  if (it == m.end()) {
    return Status::Internal("distributed gather is missing tuple (" +
                            std::to_string(r) + "," + std::to_string(c) + ")");
  }
  return it->second;
}

struct ShardOutputs {
  // Indexed like the output skeleton's tuple vector; a worker writes only
  // the slots of the out tuples it owns.
  std::vector<std::shared_ptr<const DenseMatrix>>* dense;
  std::vector<std::shared_ptr<const SparseMatrix>>* sparse;
};

Status ComputeImplShard(ImplKind kind, const Vertex& vertex,
                        const std::vector<const Relation*>& args,
                        const std::vector<std::vector<EngineTuple>>& gathered,
                        const Relation& skeleton,
                        const std::vector<int>& out_indices,
                        ShardOutputs out) {
  TupleMap ma = MapTuples(gathered[0]);
  TupleMap mb = gathered.size() > 1 ? MapTuples(gathered[1]) : TupleMap{};
  auto emit = [&out](int idx, DenseMatrix m) {
    (*out.dense)[idx] = std::make_shared<DenseMatrix>(std::move(m));
  };
  auto emit_sparse = [&out](int idx, SparseMatrix m) {
    (*out.sparse)[idx] = std::make_shared<SparseMatrix>(std::move(m));
  };

  switch (kind) {
    case ImplKind::kMmSingleSingle:
    case ImplKind::kMmSpSingleXSingle:
    case ImplKind::kGpuMmSingleSingle:
    case ImplKind::kMmRowStripsXBcastSingle:
    case ImplKind::kMmSpRowStripsXBcastSingle:
    case ImplKind::kGpuMmRowStripsXBcastSingle: {
      bool sp = kind == ImplKind::kMmSpSingleXSingle ||
                kind == ImplKind::kMmSpRowStripsXBcastSingle;
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, 0));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, 0, 0));
        emit(idx, sp ? SpMm(*ta->sparse, *tb->dense)
                     : Gemm(*ta->dense, *tb->dense));
      }
      return Status::OK();
    }
    case ImplKind::kMmBcastSingleXColStrips:
    case ImplKind::kMmSpSingleXColStrips:
    case ImplKind::kGpuMmBcastSingleXColStrips: {
      bool sp = kind == ImplKind::kMmSpSingleXColStrips;
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, 0, 0));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, 0, t.c));
        emit(idx, sp ? SpMm(*ta->sparse, *tb->dense)
                     : Gemm(*ta->dense, *tb->dense));
      }
      return Status::OK();
    }
    case ImplKind::kMmCrossStrips: {
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, 0));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, 0, t.c));
        emit(idx, Gemm(*ta->dense, *tb->dense));
      }
      return Status::OK();
    }
    case ImplKind::kMmTilesShuffle:
    case ImplKind::kMmBcastTilesXTiles:
    case ImplKind::kMmTilesXBcastTiles: {
      int64_t nk =
          NumChunks(args[0]->type.cols(), FormatOf(args[0]->format).p2);
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        std::vector<std::pair<const DenseMatrix*, const DenseMatrix*>> prods;
        prods.reserve(nk);
        for (int64_t k = 0; k < nk; ++k) {
          MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, k));
          MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, k, t.c));
          prods.emplace_back(ta->dense.get(), tb->dense.get());
        }
        emit(idx, ShardGemmSum(prods));
      }
      return Status::OK();
    }
    case ImplKind::kMmColStripsXRowStripsOuterSum: {
      for (int idx : out_indices) {
        // gathered[0] arrives sorted by (r, c): (0,0), (0,1), ... — the
        // source relation's iteration order.
        std::vector<std::pair<const DenseMatrix*, const DenseMatrix*>> prods;
        prods.reserve(gathered[0].size());
        for (const EngineTuple& ta : gathered[0]) {
          MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, ta.c, 0));
          prods.emplace_back(ta.dense.get(), tb->dense.get());
        }
        emit(idx, ShardGemmSum(prods));
      }
      return Status::OK();
    }
    case ImplKind::kMmRowStripsXBcastColStrips: {
      ChunkDims bd = ChunkDimsFor(args[1]->type, FormatOf(args[1]->format));
      std::vector<const DenseMatrix*> blocks;
      std::vector<int64_t> offsets;
      for (const EngineTuple& tb : gathered[1]) {
        blocks.push_back(tb.dense.get());
        offsets.push_back(tb.c * bd.cols);
      }
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, 0));
        emit(idx, ShardConcatGemm(*ta->dense, blocks, offsets,
                                  args[1]->type.cols()));
      }
      return Status::OK();
    }
    case ImplKind::kMmSpRowStripsXTiles: {
      ChunkDims bd = ChunkDimsFor(args[1]->type, FormatOf(args[1]->format));
      std::vector<const DenseMatrix*> tiles;
      std::vector<int64_t> row_offsets;
      std::vector<int64_t> col_offsets;
      for (const EngineTuple& tb : gathered[1]) {
        tiles.push_back(tb.dense.get());
        row_offsets.push_back(tb.r * bd.rows);
        col_offsets.push_back(tb.c * bd.cols);
      }
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, 0));
        emit(idx, ShardSpStripTilesGemm(*ta->sparse, tiles, row_offsets,
                                        col_offsets, args[1]->type.cols()));
      }
      return Status::OK();
    }
    case ImplKind::kAddZip:
    case ImplKind::kSubZip:
    case ImplKind::kHadamardZip:
    case ImplKind::kElemDivZip:
    case ImplKind::kReluGradZip: {
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, t.c));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, t.r, t.c));
        const DenseMatrix& da = *ta->dense;
        const DenseMatrix& db = *tb->dense;
        switch (kind) {
          case ImplKind::kAddZip:
            emit(idx, Add(da, db));
            break;
          case ImplKind::kSubZip:
            emit(idx, Sub(da, db));
            break;
          case ImplKind::kHadamardZip:
            emit(idx, Hadamard(da, db));
            break;
          case ImplKind::kElemDivZip:
            emit(idx, ElemDiv(da, db));
            break;
          default:
            emit(idx, ReluGrad(da, db));
            break;
        }
      }
      return Status::OK();
    }
    case ImplKind::kAddSparseZip: {
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, t.c));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* tb, Find(mb, t.r, t.c));
        emit_sparse(idx, SpAdd(*ta->sparse, *tb->sparse));
      }
      return Status::OK();
    }
    case ImplKind::kScalarMulMap:
    case ImplKind::kReluMap:
    case ImplKind::kSigmoidMap:
    case ImplKind::kExpMap:
    case ImplKind::kSoftmaxRowStrips:
    case ImplKind::kSoftmaxSingle: {
      bool sp = FormatOf(args[0]->format).sparse();
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, t.c));
        if (sp) {
          emit_sparse(idx, ta->sparse->Scaled(vertex.scalar));
          continue;
        }
        const DenseMatrix& da = *ta->dense;
        switch (kind) {
          case ImplKind::kScalarMulMap:
            emit(idx, ScalarMul(da, vertex.scalar));
            break;
          case ImplKind::kReluMap:
            emit(idx, Relu(da));
            break;
          case ImplKind::kSigmoidMap:
            emit(idx, Sigmoid(da));
            break;
          case ImplKind::kExpMap:
            emit(idx, Exp(da));
            break;
          default:
            emit(idx, Softmax(da));
            break;
        }
      }
      return Status::OK();
    }
    case ImplKind::kTransposeSingle:
    case ImplKind::kTransposeRowToCol:
    case ImplKind::kTransposeColToRow:
    case ImplKind::kTransposeTiles: {
      TupleMap by_out_key;
      for (const EngineTuple& t : gathered[0]) {
        int64_t out_r = t.c;
        int64_t out_c = t.r;
        if (kind == ImplKind::kTransposeRowToCol) {
          out_r = 0;
          out_c = t.r;
        } else if (kind == ImplKind::kTransposeColToRow) {
          out_r = t.c;
          out_c = 0;
        } else if (kind == ImplKind::kTransposeSingle) {
          out_r = 0;
          out_c = 0;
        }
        by_out_key[TupleKey(out_r, out_c)] = &t;
      }
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* src,
                                Find(by_out_key, t.r, t.c));
        emit(idx, Transpose(*src->dense));
      }
      return Status::OK();
    }
    case ImplKind::kRowSumRowStrips:
    case ImplKind::kRowSumTilesAgg:
    case ImplKind::kRowSumSingle:
    case ImplKind::kColSumColStrips:
    case ImplKind::kColSumTilesAgg:
    case ImplKind::kColSumSingle: {
      bool row = kind == ImplKind::kRowSumRowStrips ||
                 kind == ImplKind::kRowSumTilesAgg ||
                 kind == ImplKind::kRowSumSingle;
      bool to_root = kind == ImplKind::kRowSumSingle ||
                     kind == ImplKind::kColSumSingle;
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        // Group members arrive sorted by (r, c) — exactly the source
        // relation's iteration order within each group, so the merge adds
        // partials in the single-node order.
        std::vector<DenseMatrix> parts;
        for (const EngineTuple& src : gathered[0]) {
          if (!to_root && (row ? src.r != t.r : src.c != t.c)) continue;
          parts.push_back(row ? RowSum(*src.dense) : ColSum(*src.dense));
        }
        if (parts.empty()) {
          return Status::Internal("distributed reduce found no group input");
        }
        std::vector<const DenseMatrix*> ptrs;
        ptrs.reserve(parts.size());
        for (const DenseMatrix& p : parts) ptrs.push_back(&p);
        emit(idx, ShardOrderedSum(ptrs));
      }
      return Status::OK();
    }
    case ImplKind::kBroadcastRowAddBcastVec: {
      ChunkDims ad = ChunkDimsFor(args[0]->type, FormatOf(args[0]->format));
      for (int idx : out_indices) {
        const EngineTuple& t = skeleton.tuples[idx];
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* ta, Find(ma, t.r, t.c));
        MATOPT_ASSIGN_OR_RETURN(const EngineTuple* vec, Find(mb, 0, 0));
        DenseMatrix slice = vec->dense->Block(0, t.c * ad.cols, 1, t.cols);
        emit(idx, BroadcastRowAdd(*ta->dense, slice));
      }
      return Status::OK();
    }
    case ImplKind::kInverseSingleLu:
    case ImplKind::kInverseGatherLu:
    case ImplKind::kGpuInverseSingleLu: {
      ChunkDims gd = ChunkDimsFor(args[0]->type, FormatOf(args[0]->format));
      for (int idx : out_indices) {
        DenseMatrix whole(args[0]->type.rows(), args[0]->type.cols());
        for (const EngineTuple& src : gathered[0]) {
          DenseMatrix block = src.dense ? *src.dense : src.sparse->ToDense();
          whole.SetBlock(src.r * gd.rows, src.c * gd.cols, block);
        }
        MATOPT_ASSIGN_OR_RETURN(DenseMatrix inv, Inverse(whole));
        emit(idx, std::move(inv));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown implementation kind");
}

/// Per-shard transformation: assemble each owned target chunk from the
/// overlapping source chunks routed to this worker. Copies the same
/// doubles the single-node materialize-and-rechunk path copies, keeping
/// payloads bit-identical.
Status ComputeTransformShard(const MatrixType& type, const Format& src_fmt,
                             const Format& dst_fmt,
                             const std::vector<EngineTuple>& gathered,
                             const Relation& skeleton,
                             const std::vector<int>& out_indices,
                             ShardOutputs out) {
  ChunkDims sd = ChunkDimsFor(type, src_fmt);
  ChunkDims dd = ChunkDimsFor(type, dst_fmt);
  for (int idx : out_indices) {
    const EngineTuple& t = skeleton.tuples[idx];
    int64_t dr0 = t.r * dd.rows;
    int64_t dc0 = t.c * dd.cols;
    DenseMatrix block(t.rows, t.cols);
    for (const EngineTuple& s : gathered) {
      int64_t sr0 = s.r * sd.rows;
      int64_t sc0 = s.c * sd.cols;
      int64_t r_lo = std::max(sr0, dr0);
      int64_t r_hi = std::min(sr0 + s.rows, dr0 + t.rows);
      int64_t c_lo = std::max(sc0, dc0);
      int64_t c_hi = std::min(sc0 + s.cols, dc0 + t.cols);
      if (r_lo >= r_hi || c_lo >= c_hi) continue;
      DenseMatrix src_dense = s.dense ? *s.dense : s.sparse->ToDense();
      for (int64_t r = r_lo; r < r_hi; ++r) {
        for (int64_t c = c_lo; c < c_hi; ++c) {
          block(r - dr0, c - dc0) = src_dense(r - sr0, c - sc0);
        }
      }
    }
    if (dst_fmt.sparse()) {
      (*out.sparse)[idx] =
          std::make_shared<SparseMatrix>(SparseMatrix::FromDense(block));
    } else {
      (*out.dense)[idx] = std::make_shared<DenseMatrix>(std::move(block));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Pass driver.

/// One exchange (shuffle or broadcast) per stage argument.
struct ArgExchange {
  std::unique_ptr<ShuffleExchange> shuffle;
  std::unique_ptr<BroadcastExchange> bcast;

  Status Deliver(int from, const EngineTuple& t,
                 const std::vector<int>& dests) {
    if (bcast != nullptr) return bcast->Broadcast(from, t);
    for (int to : dests) {
      MATOPT_RETURN_IF_ERROR(shuffle->Route(from, to, t));
    }
    return Status::OK();
  }
  Result<std::vector<EngineTuple>> Gather(int to) {
    return bcast != nullptr ? bcast->Gather(to) : shuffle->Gather(to);
  }
  ChannelStats Remote() const {
    return bcast != nullptr ? bcast->remote_totals()
                            : shuffle->remote_totals();
  }
  ChannelStats Local() const {
    return bcast != nullptr ? bcast->local_totals()
                            : shuffle->local_totals();
  }
};

/// Fills the owned out slots from the gathered argument tuples.
using ComputeFn = std::function<Status(
    const std::vector<std::vector<EngineTuple>>& gathered,
    const Relation& skeleton, const std::vector<int>& out_indices,
    ShardOutputs out)>;

struct PassEnv {
  const Catalog& catalog;
  const ClusterConfig& cluster;
  const ComputeGraph& graph;
  const Annotation& annotation;
  int num_workers;
  bool data;             // data pass (exchanges + kernels) vs projection
  Transport* transport;  // data pass only
  std::vector<DistExchangeRecord>* records;
  size_t record_idx = 0;  // data pass: next record to fill
  DistStats* dist = nullptr;
  std::vector<double>* busy = nullptr;  // data pass only
};

/// Runs one exchange stage: plan the moves and enforce budgets, account
/// them into the stage's DistExchangeRecord, and — on the data pass —
/// execute the phased send / gather / compute protocol and install the
/// computed payloads into `skeleton`.
Result<Relation> RunExchangeStage(PassEnv& env, const std::string& label,
                                  const std::vector<const Relation*>& args,
                                  const std::vector<Route>& routes,
                                  std::vector<KeyFn> keyfns,
                                  Relation skeleton,
                                  bool recompute_rel_sparsity,
                                  const ComputeFn& compute) {
  const int W = env.num_workers;
  OwnerMap owners = MapOwners(skeleton, W);
  if (keyfns.empty()) {
    for (Route r : routes) {
      keyfns.push_back(KeyFnFor(r, owners.nr, owners.nc));
    }
  }
  MATOPT_ASSIGN_OR_RETURN(
      StagePlan plan,
      PlanStage(label, args, routes, keyfns, owners, env.cluster, W));

  if (!env.data) {
    DistExchangeRecord rec;
    rec.label = label;
    rec.predicted_shuffle_bytes = plan.shuffle_bytes;
    rec.predicted_broadcast_bytes = plan.broadcast_bytes;
    rec.predicted_tuples = plan.tuples;
    rec.shard_skew = ShardSkew(skeleton, W);
    env.records->push_back(std::move(rec));
    return skeleton;
  }

  if (env.record_idx >= env.records->size() ||
      (*env.records)[env.record_idx].label != label) {
    return Status::Internal("projection/data stage sequences diverged at " +
                            label);
  }
  DistExchangeRecord& rec = (*env.records)[env.record_idx++];

  std::vector<ArgExchange> exchanges(args.size());
  for (size_t j = 0; j < args.size(); ++j) {
    std::string ex_label = label + ":arg" + std::to_string(j);
    if (plan.args[j].broadcast) {
      exchanges[j].bcast = std::make_unique<BroadcastExchange>(
          *env.transport, ex_label, W, plan.args[j].sparse_layout);
    } else {
      exchanges[j].shuffle = std::make_unique<ShuffleExchange>(
          *env.transport, ex_label, W, plan.args[j].sparse_layout);
    }
  }

  // Owned tuple indices per (worker, arg), and each worker's out slots.
  std::vector<std::vector<std::vector<int>>> owned(W);
  for (int w = 0; w < W; ++w) owned[w].resize(args.size());
  for (size_t j = 0; j < args.size(); ++j) {
    for (size_t i = 0; i < args[j]->tuples.size(); ++i) {
      owned[DistWorkerOf(args[j]->tuples[i], W)][j].push_back(
          static_cast<int>(i));
    }
  }
  std::vector<std::vector<int>> out_indices(W);
  for (size_t i = 0; i < skeleton.tuples.size(); ++i) {
    out_indices[DistWorkerOf(skeleton.tuples[i], W)].push_back(
        static_cast<int>(i));
  }

  using Clock = std::chrono::steady_clock;
  auto charge_busy = [&env](int w, Clock::time_point start) {
    (*env.busy)[w] +=
        std::chrono::duration<double>(Clock::now() - start).count();
  };

  // Send phase: each worker routes the tuples it owns. Sends never block;
  // the ParallelFor join is the barrier separating sends from drains.
  std::vector<Status> worker_status(W);
  ParallelFor(0, W, 1, [&](int64_t w0, int64_t w1) {
    for (int64_t w = w0; w < w1; ++w) {
      auto start = Clock::now();
      for (size_t j = 0; j < args.size() && worker_status[w].ok(); ++j) {
        for (int i : owned[w][j]) {
          Status s =
              exchanges[j].Deliver(static_cast<int>(w), args[j]->tuples[i],
                                   plan.args[j].dests[i]);
          if (!s.ok()) {
            worker_status[w] = std::move(s);
            break;
          }
        }
      }
      charge_busy(static_cast<int>(w), start);
    }
  });
  for (const Status& s : worker_status) {
    MATOPT_RETURN_IF_ERROR(s);
  }

  // Drain + compute phase: each worker gathers its inbound tuples in rank
  // order and computes the out tuples it owns into index-addressed slots.
  std::vector<std::shared_ptr<const DenseMatrix>> dense_out(
      skeleton.tuples.size());
  std::vector<std::shared_ptr<const SparseMatrix>> sparse_out(
      skeleton.tuples.size());
  ParallelFor(0, W, 1, [&](int64_t w0, int64_t w1) {
    for (int64_t w = w0; w < w1; ++w) {
      auto start = Clock::now();
      std::vector<std::vector<EngineTuple>> gathered(args.size());
      for (size_t j = 0; j < args.size() && worker_status[w].ok(); ++j) {
        auto g = exchanges[j].Gather(static_cast<int>(w));
        if (!g.ok()) {
          worker_status[w] = g.status();
          break;
        }
        gathered[j] = std::move(g).value();
      }
      if (worker_status[w].ok()) {
        worker_status[w] = compute(gathered, skeleton, out_indices[w],
                                   ShardOutputs{&dense_out, &sparse_out});
      }
      charge_busy(static_cast<int>(w), start);
    }
  });
  for (const Status& s : worker_status) {
    MATOPT_RETURN_IF_ERROR(s);
  }

  // Install payloads, mirroring FinishOutput / FinishSparseOutput.
  bool sparse_fmt = FormatOf(skeleton.format).sparse();
  skeleton.has_data = true;
  int64_t total_nnz = 0;
  for (size_t i = 0; i < skeleton.tuples.size(); ++i) {
    EngineTuple& t = skeleton.tuples[i];
    if (sparse_fmt) {
      t.sparse = sparse_out[i] != nullptr
                     ? sparse_out[i]
                     : std::make_shared<SparseMatrix>(t.rows, t.cols);
      t.sparsity = sparse_out[i] != nullptr ? t.sparse->Sparsity() : 0.0;
      total_nnz += t.sparse->nnz();
    } else {
      t.dense = dense_out[i] != nullptr
                    ? dense_out[i]
                    : std::make_shared<DenseMatrix>(t.rows, t.cols);
    }
  }
  if (sparse_fmt && recompute_rel_sparsity) {
    // Matches MakeSparseRelation: the relation's sparsity is the measured
    // non-zero fraction of the whole matrix.
    int64_t total = skeleton.type.rows() * skeleton.type.cols();
    skeleton.sparsity =
        total == 0 ? 0.0 : static_cast<double>(total_nnz) / total;
  }

  // Measured side of the record, from the transport/exchange counters.
  rec.measured_shuffle_bytes = 0.0;
  rec.measured_broadcast_bytes = 0.0;
  rec.measured_tuples = 0.0;
  for (size_t j = 0; j < args.size(); ++j) {
    ChannelStats remote = exchanges[j].Remote();
    ChannelStats local = exchanges[j].Local();
    if (plan.args[j].broadcast) {
      rec.measured_broadcast_bytes += remote.bytes;
    } else {
      rec.measured_shuffle_bytes += remote.bytes;
    }
    rec.measured_tuples += static_cast<double>(remote.tuples + local.tuples);
    env.dist->messages += remote.messages;
  }
  rec.shard_skew = ShardSkew(skeleton, W);
  env.dist->bytes_shuffled += rec.measured_shuffle_bytes;
  env.dist->bytes_broadcast += rec.measured_broadcast_bytes;
  env.dist->tuples_routed += rec.measured_tuples;
  env.dist->max_shard_skew = std::max(env.dist->max_shard_skew, rec.shard_skew);
  return skeleton;
}

Result<Relation> RunTransformStage(PassEnv& env, const std::string& label,
                                   TransformKind kind, const Relation& input) {
  ArgInfo arg{input.type, input.format, input.sparsity};
  auto target = env.catalog.TransformOutputFormat(kind, arg, env.cluster);
  if (!target.has_value()) {
    return Status::TypeError(std::string("transformation ") +
                             TransformKindName(kind) +
                             " is infeasible for this relation");
  }
  const Format src_fmt = FormatOf(input.format);
  const Format dst_fmt = FormatOf(*target);
  double out_sparsity = dst_fmt.sparse() ? input.sparsity : 1.0;
  Relation skeleton =
      MakeDryRelation(input.type, *target, out_sparsity, env.cluster);

  KeyFn overlap = GridOverlapKeyFn(input.type, src_fmt, dst_fmt);
  const MatrixType type = input.type;
  ComputeFn compute = [type, src_fmt, dst_fmt](
                          const std::vector<std::vector<EngineTuple>>& g,
                          const Relation& skel,
                          const std::vector<int>& out_idx, ShardOutputs out) {
    return ComputeTransformShard(type, src_fmt, dst_fmt, g[0], skel, out_idx,
                                 out);
  };
  std::vector<KeyFn> keyfns;
  keyfns.push_back(std::move(overlap));
  return RunExchangeStage(env, label, {&input}, {Route::kIdentity},
                          std::move(keyfns), std::move(skeleton),
                          /*recompute_rel_sparsity=*/true, compute);
}

/// Runs every annotated atomic computation of the plan as per-shard local
/// kernels plus exchanges, in vertex order. The projection and data passes
/// share this loop so their stage sequences match record for record.
Status RunPass(PassEnv& env, std::unordered_map<int, Relation> relations,
               std::unordered_map<int, Relation>* sinks) {
  const ComputeGraph& graph = env.graph;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = graph.vertex(v);
    if (vx.op == OpKind::kInput) {
      if (relations.find(v) == relations.end()) {
        return Status::InvalidArgument("missing input relation for vertex " +
                                       std::to_string(v));
      }
      continue;
    }
    const VertexAnnotation& va = env.annotation.at(v);

    // Per-edge transformations, each its own exchange stage.
    std::vector<Relation> transformed;
    transformed.reserve(vx.inputs.size());
    std::vector<const Relation*> args;
    for (size_t j = 0; j < vx.inputs.size(); ++j) {
      const Relation& in = relations.at(vx.inputs[j]);
      if (va.input_edges[j].transform.has_value()) {
        std::string label = "v" + std::to_string(v) + ".arg" +
                            std::to_string(j) + ":transform:" +
                            TransformKindName(*va.input_edges[j].transform);
        MATOPT_ASSIGN_OR_RETURN(
            Relation tr,
            RunTransformStage(env, label, *va.input_edges[j].transform, in));
        transformed.push_back(std::move(tr));
        args.push_back(&transformed.back());
      } else {
        args.push_back(&in);
      }
    }

    // The implementation stage. The output skeleton follows the annotated
    // output format; the estimated sparsity stays on the relation (like
    // the single-node path) while tuples get measured payload sparsities.
    std::string label = "v" + std::to_string(v) + ":" + ImplKindName(va.impl);
    FormatId out_format = va.output_format;
    double out_sparsity = FormatOf(out_format).sparse() ? vx.sparsity : 1.0;
    Relation skeleton =
        MakeDryRelation(vx.type, out_format, out_sparsity, env.cluster);
    ImplKind impl = va.impl;
    ComputeFn compute = [impl, &vx, &args](
                            const std::vector<std::vector<EngineTuple>>& g,
                            const Relation& skel,
                            const std::vector<int>& out_idx,
                            ShardOutputs out) {
      return ComputeImplShard(impl, vx, args, g, skel, out_idx, out);
    };
    MATOPT_ASSIGN_OR_RETURN(
        Relation out_rel,
        RunExchangeStage(env, label, args, RoutesFor(impl), {},
                         std::move(skeleton),
                         /*recompute_rel_sparsity=*/false, compute));
    relations[v] = std::move(out_rel);
  }

  for (int sink : graph.Sinks()) {
    auto it = relations.find(sink);
    if (it == relations.end()) {
      return Status::Internal("sink vertex " + std::to_string(sink) +
                              " produced no relation");
    }
    sinks->emplace(sink, std::move(it->second));
  }
  return Status::OK();
}

}  // namespace

Result<ExecResult> ExecuteDistributedPlan(
    const Catalog& catalog, const ClusterConfig& cluster,
    const ComputeGraph& graph, const Annotation& annotation,
    std::unordered_map<int, Relation> inputs, int num_workers,
    Transport* transport, bool zero_copy, bool fusion) {
  if (num_workers < 1) {
    return Status::InvalidArgument("distributed execution needs >= 1 worker");
  }
  auto make_dry_inputs = [&] {
    std::unordered_map<int, Relation> dry;
    for (const auto& [v, rel] : inputs) {
      dry.emplace(v,
                  MakeDryRelation(rel.type, rel.format, rel.sparsity, cluster));
    }
    return dry;
  };

  // Pass 1 — simulation: the unchanged single-node dry pass supplies the
  // full simulated ExecStats, runs the pre-flight plan analysis, and
  // reproduces the sim-side budget failures.
  PlanExecutor sim(catalog, cluster);
  sim.set_zero_copy(zero_copy);
  sim.set_fusion(fusion);
  sim.set_dist_workers(0);
  MATOPT_ASSIGN_OR_RETURN(ExecResult result,
                          sim.Execute(graph, annotation, make_dry_inputs()));
  result.stats.dist.num_workers = num_workers;

  // Pass 2 — projection: walk the same stage sequence over dry relations
  // and predict each exchange's traffic from relation metadata.
  PassEnv proj{catalog,
               cluster,
               graph,
               annotation,
               num_workers,
               /*data=*/false,
               /*transport=*/nullptr,
               &result.stats.dist.stages};
  proj.dist = &result.stats.dist;
  std::unordered_map<int, Relation> dry_sinks;
  MATOPT_RETURN_IF_ERROR(RunPass(proj, make_dry_inputs(), &dry_sinks));

  // Pass 3 — data: real exchanges over the transport, per-shard kernels,
  // measured counters filled into the records the projection pass wrote.
  // Budget enforcement lives in PlanStage, so the fallback transport is
  // deliberately unbounded: violations surface as the coordinator's typed
  // errors, never as a mid-flight channel failure.
  std::unique_ptr<InMemoryTransport> fallback;
  if (transport == nullptr) {
    fallback = std::make_unique<InMemoryTransport>(TransportLimits{});
    transport = fallback.get();
  }
  std::vector<double> busy(num_workers, 0.0);
  PassEnv data{catalog,
               cluster,
               graph,
               annotation,
               num_workers,
               /*data=*/true,
               transport,
               &result.stats.dist.stages};
  data.dist = &result.stats.dist;
  data.busy = &busy;
  std::unordered_map<int, Relation> sinks;
  MATOPT_RETURN_IF_ERROR(RunPass(data, std::move(inputs), &sinks));
  if (data.record_idx != result.stats.dist.stages.size()) {
    return Status::Internal("data pass executed fewer stages than projected");
  }

  result.stats.dist.worker_busy_seconds = std::move(busy);
  result.sinks = std::move(sinks);
  return result;
}

}  // namespace matopt::dist
