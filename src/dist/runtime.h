#ifndef MATOPT_DIST_RUNTIME_H_
#define MATOPT_DIST_RUNTIME_H_

#include <unordered_map>

#include "core/graph/graph.h"
#include "core/opt/annotation.h"
#include "core/ops/catalog.h"
#include "dist/transport.h"
#include "engine/executor.h"

namespace matopt::dist {

/// Executes an annotated plan on the sharded multi-worker runtime
/// (DESIGN.md §12): `num_workers` in-process workers each own a hash
/// partition of every relation, operators run per shard, and data moves
/// only through shuffle/broadcast exchanges over `transport` (a bounded
/// in-memory transport scoped to this call when null).
///
/// Runs three passes: a single-node dry pass for the full simulated
/// ExecStats (including the sim-side budget failures), a projection pass
/// that predicts each stage's exchange traffic from relation metadata, and
/// the data pass that routes real payloads and fills in the measured side
/// of each DistExchangeRecord. Sink relations are bit-identical to a
/// single-node execution at any worker count; stats.dist reports predicted
/// vs measured traffic per stage.
///
/// Budgets are enforced deterministically on the coordinator before any
/// send: single_tuple_cap_bytes per routed tuple, broadcast_cap_bytes per
/// replicated relation, worker_spill_bytes on a worker's per-stage remote
/// shuffle inbound. Violations return typed kOutOfMemory errors.
/// `fusion` is forwarded to the dry pass so the simulated MemoryStats
/// reflect the caller's fused-group setting; the data pass itself runs
/// stage-by-stage per shard and never applies fused chains.
Result<ExecResult> ExecuteDistributedPlan(
    const Catalog& catalog, const ClusterConfig& cluster,
    const ComputeGraph& graph, const Annotation& annotation,
    std::unordered_map<int, Relation> inputs, int num_workers,
    Transport* transport, bool zero_copy, bool fusion);

}  // namespace matopt::dist

#endif  // MATOPT_DIST_RUNTIME_H_
