#include "dist/transport.h"

#include <utility>

namespace matopt::dist {

// Named (not anonymous-namespace) so InMemoryTransport's friend
// declaration reaches it.
class InMemoryExchange final : public Exchange {
 public:
  InMemoryExchange(InMemoryTransport* owner, TransportLimits limits,
                   std::string label, int num_workers)
      : owner_(owner),
        limits_(limits),
        label_(std::move(label)),
        num_workers_(num_workers),
        mailboxes_(static_cast<size_t>(num_workers) * num_workers),
        stats_(static_cast<size_t>(num_workers) * num_workers) {}

  ~InMemoryExchange() override { owner_->Retire(Totals()); }

  Status Send(int from, int to, TupleMessage message) override {
    if (from < 0 || from >= num_workers_ || to < 0 || to >= num_workers_) {
      return Status::InvalidArgument("exchange " + label_ +
                                     ": worker rank out of range");
    }
    if (message.bytes > limits_.single_tuple_cap_bytes) {
      return Status::OutOfMemory(
          "exchange " + label_ + ": tuple of " +
          std::to_string(message.bytes) +
          " bytes exceeds the single-tuple cap (single_tuple_cap_bytes)");
    }
    ChannelStats& ch = stats_[Index(from, to)];
    ++ch.messages;
    ++ch.tuples;
    ch.bytes += message.bytes;
    mailboxes_[Index(from, to)].push_back(std::move(message));
    return Status::OK();
  }

  Result<std::vector<TupleMessage>> Drain(int to) override {
    if (to < 0 || to >= num_workers_) {
      return Status::InvalidArgument("exchange " + label_ +
                                     ": worker rank out of range");
    }
    double inbound = 0.0;
    size_t count = 0;
    for (int from = 0; from < num_workers_; ++from) {
      for (const TupleMessage& m : mailboxes_[Index(from, to)]) {
        inbound += m.bytes;
        ++count;
      }
    }
    if (inbound > limits_.channel_capacity_bytes) {
      return Status::OutOfMemory(
          "exchange " + label_ + ": worker " + std::to_string(to) +
          " buffers " + std::to_string(inbound) +
          " inbound bytes, over the channel capacity");
    }
    std::vector<TupleMessage> out;
    out.reserve(count);
    // Rank-ordered drain: sender 0 first, each sender's messages in send
    // order. Combined with the canonical key sort downstream this makes
    // the gathered sequence independent of scheduling.
    for (int from = 0; from < num_workers_; ++from) {
      auto& box = mailboxes_[Index(from, to)];
      for (TupleMessage& m : box) out.push_back(std::move(m));
      box.clear();
    }
    return out;
  }

  ChannelStats Channel(int from, int to) const override {
    if (from < 0 || from >= num_workers_ || to < 0 || to >= num_workers_) {
      return {};
    }
    return stats_[Index(from, to)];
  }

  ChannelStats Totals() const override {
    ChannelStats total;
    for (const ChannelStats& ch : stats_) total.Add(ch);
    return total;
  }

  int num_workers() const override { return num_workers_; }
  const std::string& label() const override { return label_; }

 private:
  size_t Index(int from, int to) const {
    return static_cast<size_t>(from) * num_workers_ + to;
  }

  InMemoryTransport* owner_;
  TransportLimits limits_;
  std::string label_;
  int num_workers_;
  // Channel (from, to) is written only by `from`'s thread during the send
  // phase and read only by `to`'s thread after the phase barrier, so the
  // mailboxes need no locks.
  std::vector<std::vector<TupleMessage>> mailboxes_;
  std::vector<ChannelStats> stats_;
};

std::unique_ptr<Exchange> InMemoryTransport::OpenExchange(std::string label,
                                                          int num_workers) {
  return std::make_unique<InMemoryExchange>(this, limits_, std::move(label),
                                            num_workers);
}

ChannelStats InMemoryTransport::lifetime_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lifetime_;
}

void InMemoryTransport::Retire(const ChannelStats& totals) {
  std::lock_guard<std::mutex> lock(mu_);
  lifetime_.Add(totals);
}

}  // namespace matopt::dist
