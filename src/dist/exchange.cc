#include "dist/exchange.h"

#include <algorithm>
#include <utility>

namespace matopt::dist {

ShuffleExchange::ShuffleExchange(Transport& transport, std::string label,
                                 int num_workers, bool sparse_layout)
    : exchange_(transport.OpenExchange(std::move(label), num_workers)),
      num_workers_(num_workers),
      sparse_layout_(sparse_layout),
      local_(num_workers),
      local_stats_(num_workers) {}

Status ShuffleExchange::Route(int from, int to, const EngineTuple& tuple) {
  double bytes = tuple.Bytes(sparse_layout_);
  if (from == to) {
    ChannelStats& ch = local_stats_[from];
    ++ch.messages;
    ++ch.tuples;
    ch.bytes += bytes;
    local_[from].push_back(tuple);
    return Status::OK();
  }
  return exchange_->Send(from, to, TupleMessage{tuple, bytes});
}

Result<std::vector<EngineTuple>> ShuffleExchange::Gather(int to) {
  MATOPT_ASSIGN_OR_RETURN(std::vector<TupleMessage> drained,
                          exchange_->Drain(to));
  std::vector<EngineTuple> out = std::move(local_[to]);
  local_[to].clear();
  out.reserve(out.size() + drained.size());
  for (TupleMessage& m : drained) out.push_back(std::move(m.tuple));
  std::sort(out.begin(), out.end(),
            [](const EngineTuple& a, const EngineTuple& b) {
              if (a.r != b.r) return a.r < b.r;
              return a.c < b.c;
            });
  return out;
}

ChannelStats ShuffleExchange::local_totals() const {
  ChannelStats total;
  for (const ChannelStats& ch : local_stats_) total.Add(ch);
  return total;
}

BroadcastExchange::BroadcastExchange(Transport& transport, std::string label,
                                     int num_workers, bool sparse_layout)
    : shuffle_(transport, std::move(label), num_workers, sparse_layout) {}

Status BroadcastExchange::Broadcast(int from, const EngineTuple& tuple) {
  for (int to = 0; to < shuffle_.num_workers(); ++to) {
    MATOPT_RETURN_IF_ERROR(shuffle_.Route(from, to, tuple));
  }
  return Status::OK();
}

Result<std::vector<EngineTuple>> BroadcastExchange::Gather(int to) {
  return shuffle_.Gather(to);
}

}  // namespace matopt::dist
