#include "dist/partition.h"

#include <algorithm>

#include "core/format/format.h"

namespace matopt::dist {

int DistWorkerOf(const EngineTuple& tuple, int num_workers) {
  return tuple.worker % num_workers;
}

std::vector<std::vector<int>> ShardIndices(const Relation& relation,
                                           int num_workers) {
  std::vector<std::vector<int>> shards(num_workers);
  for (size_t i = 0; i < relation.tuples.size(); ++i) {
    shards[DistWorkerOf(relation.tuples[i], num_workers)].push_back(
        static_cast<int>(i));
  }
  return shards;
}

std::vector<double> ShardBytes(const Relation& relation, int num_workers) {
  std::vector<double> bytes(num_workers, 0.0);
  bool sp = BuiltinFormats()[relation.format].sparse();
  for (const EngineTuple& t : relation.tuples) {
    bytes[DistWorkerOf(t, num_workers)] += t.Bytes(sp);
  }
  return bytes;
}

double ShardSkew(const Relation& relation, int num_workers) {
  std::vector<double> bytes = ShardBytes(relation, num_workers);
  double total = 0.0;
  double max_bytes = 0.0;
  for (double b : bytes) {
    total += b;
    max_bytes = std::max(max_bytes, b);
  }
  if (total <= 0.0) return 1.0;
  // One shard holding everything reports exactly num_workers; the general
  // multiply-before-divide form avoids the rounding of total / n.
  if (max_bytes == total) return static_cast<double>(num_workers);
  return max_bytes * static_cast<double>(num_workers) / total;
}

}  // namespace matopt::dist
