#include "engine/relation.h"

#include <algorithm>

namespace matopt {

namespace {

const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }

/// Chunk grid (rows x cols of chunks, chunk extents) for a dense layout.
struct ChunkGrid {
  int64_t chunk_rows = 0;  // chunk height (0 = full)
  int64_t chunk_cols = 0;  // chunk width (0 = full)
  int64_t nr = 1;
  int64_t nc = 1;
};

ChunkGrid GridFor(const MatrixType& type, const Format& f) {
  ChunkGrid g;
  switch (f.layout) {
    case Layout::kSingleTuple:
    case Layout::kSpSingleCsr:
    case Layout::kSpCoo:
      g.chunk_rows = type.rows();
      g.chunk_cols = type.cols();
      break;
    case Layout::kRowStrips:
    case Layout::kSpRowStripsCsr:
      g.chunk_rows = std::min(f.p1, type.rows());
      g.chunk_cols = type.cols();
      g.nr = NumChunks(type.rows(), f.p1);
      break;
    case Layout::kColStrips:
    case Layout::kSpColStripsCsc:
      g.chunk_rows = type.rows();
      g.chunk_cols = std::min(f.p1, type.cols());
      g.nc = NumChunks(type.cols(), f.p1);
      break;
    case Layout::kTiles:
    case Layout::kSpTilesCsr: {
      int64_t tc = f.layout == Layout::kSpTilesCsr ? f.p1 : f.p2;
      g.chunk_rows = std::min(f.p1, type.rows());
      g.chunk_cols = std::min(tc, type.cols());
      g.nr = NumChunks(type.rows(), f.p1);
      g.nc = NumChunks(type.cols(), tc);
      break;
    }
  }
  return g;
}

}  // namespace

ChunkDims ChunkDimsFor(const MatrixType& type, const Format& format) {
  ChunkGrid g = GridFor(type, format);
  return ChunkDims{g.chunk_rows, g.chunk_cols};
}

int WorkerFor(int64_t r, int64_t c, int num_workers) {
  uint64_t h = static_cast<uint64_t>(r) * 1000003u +
               static_cast<uint64_t>(c) * 29u + 17u;
  return static_cast<int>(h % static_cast<uint64_t>(num_workers));
}

double Relation::TotalBytes() const {
  bool sp = FormatOf(format).sparse();
  double total = 0.0;
  for (const EngineTuple& t : tuples) total += t.Bytes(sp);
  return total;
}

std::vector<double> Relation::WorkerBytes(int num_workers) const {
  std::vector<double> bytes(num_workers, 0.0);
  bool sp = FormatOf(format).sparse();
  for (const EngineTuple& t : tuples) bytes[t.worker] += t.Bytes(sp);
  return bytes;
}

Result<Relation> MakeRelation(const DenseMatrix& matrix, FormatId format,
                              const ClusterConfig& cluster) {
  const Format& f = FormatOf(format);
  if (f.sparse()) {
    return MakeSparseRelation(SparseMatrix::FromDense(matrix), format,
                              cluster);
  }
  Relation rel;
  rel.type = MatrixType(matrix.rows(), matrix.cols());
  rel.format = format;
  rel.has_data = true;
  ChunkGrid g = GridFor(rel.type, f);
  for (int64_t r = 0; r < g.nr; ++r) {
    for (int64_t c = 0; c < g.nc; ++c) {
      EngineTuple t;
      t.r = r;
      t.c = c;
      auto block = matrix.Block(r * g.chunk_rows, c * g.chunk_cols,
                                g.chunk_rows, g.chunk_cols);
      t.rows = block.rows();
      t.cols = block.cols();
      t.worker = WorkerFor(r, c, cluster.num_workers);
      t.dense = std::make_shared<DenseMatrix>(std::move(block));
      rel.tuples.push_back(std::move(t));
    }
  }
  return rel;
}

Result<Relation> MakeSparseRelation(const SparseMatrix& matrix,
                                    FormatId format,
                                    const ClusterConfig& cluster) {
  const Format& f = FormatOf(format);
  if (!f.sparse()) {
    return MakeRelation(matrix.ToDense(), format, cluster);
  }
  Relation rel;
  rel.type = MatrixType(matrix.rows(), matrix.cols());
  rel.format = format;
  rel.sparsity = matrix.Sparsity();
  rel.has_data = true;
  switch (f.layout) {
    case Layout::kSpSingleCsr:
    case Layout::kSpCoo: {
      EngineTuple t;
      t.rows = matrix.rows();
      t.cols = matrix.cols();
      t.sparsity = rel.sparsity;
      t.worker = WorkerFor(0, 0, cluster.num_workers);
      t.sparse = std::make_shared<SparseMatrix>(matrix);
      rel.tuples.push_back(std::move(t));
      break;
    }
    case Layout::kSpRowStripsCsr: {
      int64_t nr = NumChunks(matrix.rows(), f.p1);
      for (int64_t r = 0; r < nr; ++r) {
        EngineTuple t;
        t.r = r;
        auto strip = matrix.RowSlice(r * f.p1, f.p1);
        t.rows = strip.rows();
        t.cols = strip.cols();
        t.sparsity = strip.Sparsity();
        t.worker = WorkerFor(r, 0, cluster.num_workers);
        t.sparse = std::make_shared<SparseMatrix>(std::move(strip));
        rel.tuples.push_back(std::move(t));
      }
      break;
    }
    case Layout::kSpColStripsCsc: {
      int64_t nc = NumChunks(matrix.cols(), f.p1);
      for (int64_t c = 0; c < nc; ++c) {
        EngineTuple t;
        t.c = c;
        auto strip = matrix.ColSlice(c * f.p1, f.p1);
        t.rows = strip.rows();
        t.cols = strip.cols();
        t.sparsity = strip.Sparsity();
        t.worker = WorkerFor(0, c, cluster.num_workers);
        t.sparse = std::make_shared<SparseMatrix>(std::move(strip));
        rel.tuples.push_back(std::move(t));
      }
      break;
    }
    default:
      return Status::InvalidArgument("unsupported sparse layout");
  }
  return rel;
}

Relation MakeDryRelation(const MatrixType& type, FormatId format,
                         double sparsity, const ClusterConfig& cluster) {
  Relation rel;
  rel.type = type;
  rel.format = format;
  rel.sparsity = sparsity;
  rel.has_data = false;
  const Format& f = FormatOf(format);
  ChunkGrid g = GridFor(type, f);
  for (int64_t r = 0; r < g.nr; ++r) {
    for (int64_t c = 0; c < g.nc; ++c) {
      EngineTuple t;
      t.r = r;
      t.c = c;
      t.rows = std::min(g.chunk_rows, type.rows() - r * g.chunk_rows);
      t.cols = std::min(g.chunk_cols, type.cols() - c * g.chunk_cols);
      t.sparsity = sparsity;
      t.worker = WorkerFor(r, c, cluster.num_workers);
      rel.tuples.push_back(std::move(t));
    }
  }
  return rel;
}

Result<DenseMatrix> MaterializeDense(const Relation& relation) {
  if (!relation.has_data) {
    return Status::InvalidArgument("cannot materialize a dry-run relation");
  }
  DenseMatrix out(relation.type.rows(), relation.type.cols());
  const Format& f = FormatOf(relation.format);
  ChunkGrid g = GridFor(relation.type, f);
  for (const EngineTuple& t : relation.tuples) {
    DenseMatrix block = t.dense ? *t.dense : t.sparse->ToDense();
    out.SetBlock(t.r * g.chunk_rows, t.c * g.chunk_cols, block);
  }
  return out;
}

Result<SparseMatrix> MaterializeSparse(const Relation& relation) {
  MATOPT_ASSIGN_OR_RETURN(DenseMatrix dense, MaterializeDense(relation));
  return SparseMatrix::FromDense(dense);
}

}  // namespace matopt
