#ifndef MATOPT_ENGINE_OPERATORS_H_
#define MATOPT_ENGINE_OPERATORS_H_

#include <vector>

#include "common/status.h"
#include "core/graph/graph.h"
#include "core/ops/catalog.h"
#include "engine/exec_stats.h"
#include "engine/relation.h"

namespace matopt {

/// Executes one physical matrix transformation on the simulated cluster:
/// repartitions (and, for dense<->sparse, converts) the relation into the
/// transformation's target format, charging network, tuple, and
/// materialization costs. Works on dry-run relations (metadata only) and
/// data relations alike.
Result<Relation> ExecuteTransform(const Catalog& catalog, TransformKind kind,
                                  const Relation& input,
                                  const ClusterConfig& cluster,
                                  ExecStats* stats);

/// Executes one atomic computation implementation over its argument
/// relations. `vertex` supplies the output type, scalar attribute, and
/// estimated output sparsity; `out_format` is the annotated output
/// physical implementation (already validated against i.f).
Result<Relation> ExecuteImpl(const Catalog& catalog, ImplKind kind,
                             FormatId out_format,
                             const std::vector<const Relation*>& args,
                             const Vertex& vertex,
                             const ClusterConfig& cluster, ExecStats* stats);

}  // namespace matopt

#endif  // MATOPT_ENGINE_OPERATORS_H_
