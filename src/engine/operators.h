#ifndef MATOPT_ENGINE_OPERATORS_H_
#define MATOPT_ENGINE_OPERATORS_H_

#include <vector>

#include "common/status.h"
#include "core/graph/graph.h"
#include "core/ops/catalog.h"
#include "engine/exec_stats.h"
#include "engine/relation.h"

namespace matopt {

/// Executes one physical matrix transformation on the simulated cluster:
/// repartitions (and, for dense<->sparse, converts) the relation into the
/// transformation's target format, charging network, tuple, and
/// materialization costs. Works on dry-run relations (metadata only) and
/// data relations alike.
Result<Relation> ExecuteTransform(const Catalog& catalog, TransformKind kind,
                                  const Relation& input,
                                  const ClusterConfig& cluster,
                                  ExecStats* stats);

/// One argument of an atomic computation implementation. `rel` is always
/// set; `owned` additionally points at the same relation when the plan
/// proved its producer is dead after this edge (single remaining
/// consumer), so the operator may steal tuple payloads whose refcount
/// is 1 instead of allocating fresh outputs.
struct ExecInput {
  const Relation* rel = nullptr;
  Relation* owned = nullptr;
};

/// Per-call execution options for the zero-copy memory layer. The
/// defaults give the zero-copy behaviour with no fusion; a
/// default-constructed ExecOptions is what the compatibility ExecuteImpl
/// overload uses. Every option changes only where bytes live — results
/// stay bit-identical.
struct ExecOptions {
  /// Master switch: false restores the copy-everything paths (fresh
  /// output per kernel, Block/SetBlock round-trips) for A/B comparison.
  bool zero_copy = true;

  /// >= 0 when this vertex is a fused-group member (DESIGN.md §15): its
  /// value was already applied in place over the group base's output, so
  /// the vertex charges its normal accounting but passes through arg
  /// `passthrough_arg`'s payloads instead of recomputing.
  int passthrough_arg = -1;
};

/// Executes one atomic computation implementation over its argument
/// relations. `vertex` supplies the output type, scalar attribute, and
/// estimated output sparsity; `out_format` is the annotated output
/// physical implementation (already validated against i.f).
Result<Relation> ExecuteImpl(const Catalog& catalog, ImplKind kind,
                             FormatId out_format,
                             const std::vector<const Relation*>& args,
                             const Vertex& vertex,
                             const ClusterConfig& cluster, ExecStats* stats);

/// Move-aware overload: arguments carry ownership information and
/// `options` selects zero-copy behaviour and fused-member passthrough.
/// The plain overload forwards here with default options and no owned
/// arguments.
Result<Relation> ExecuteImpl(const Catalog& catalog, ImplKind kind,
                             FormatId out_format,
                             const std::vector<ExecInput>& args,
                             const Vertex& vertex,
                             const ClusterConfig& cluster, ExecStats* stats,
                             const ExecOptions& options);

}  // namespace matopt

#endif  // MATOPT_ENGINE_OPERATORS_H_
