#ifndef MATOPT_ENGINE_RELATION_H_
#define MATOPT_ENGINE_RELATION_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/format/format.h"
#include "core/format/matrix_type.h"
#include "engine/cluster.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

namespace matopt {

/// One tuple of a matrix-valued relation: chunk indices, payload shape,
/// the simulated worker holding it, and (outside dry-run mode) the actual
/// chunk data. Exactly one of `dense` / `sparse` is set when data is
/// present.
///
/// A COO-format relation logically has one tuple per non-zero; to keep
/// real execution tractable it is physically represented as one CSR chunk
/// per worker, while the cost accounting still counts per-non-zero tuples.
struct EngineTuple {
  int64_t r = 0;
  int64_t c = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
  int worker = 0;
  std::shared_ptr<const DenseMatrix> dense;
  std::shared_ptr<const SparseMatrix> sparse;

  /// Payload bytes under the owning relation's layout.
  double Bytes(bool sparse_layout) const {
    double entries = static_cast<double>(rows) * static_cast<double>(cols);
    return sparse_layout ? 16.0 * sparsity * entries + 8.0 * rows
                         : 8.0 * entries;
  }
};

/// A horizontally partitioned relation storing one matrix in one physical
/// format. The engine executes relational operators over these.
struct Relation {
  MatrixType type;
  FormatId format = kNoFormat;
  double sparsity = 1.0;
  bool has_data = false;
  std::vector<EngineTuple> tuples;

  double TotalBytes() const;
  /// Bytes resident on each worker.
  std::vector<double> WorkerBytes(int num_workers) const;
};

/// Deterministic worker placement by chunk key.
int WorkerFor(int64_t r, int64_t c, int num_workers);

/// Chunk extents (height, width) of tuples under a layout; the offset of
/// tuple (r, c) within the full matrix is (r * rows, c * cols).
struct ChunkDims {
  int64_t rows = 0;
  int64_t cols = 0;
};
ChunkDims ChunkDimsFor(const MatrixType& type, const Format& format);

/// Chunks a dense matrix into a relation with the given (dense) format.
Result<Relation> MakeRelation(const DenseMatrix& matrix, FormatId format,
                              const ClusterConfig& cluster);

/// Chunks a sparse matrix into a relation with the given (sparse) format.
Result<Relation> MakeSparseRelation(const SparseMatrix& matrix,
                                    FormatId format,
                                    const ClusterConfig& cluster);

/// Builds a metadata-only relation (dry-run mode): tuples carry shapes and
/// placement but no data. Cost accounting is identical to the real path.
Relation MakeDryRelation(const MatrixType& type, FormatId format,
                         double sparsity, const ClusterConfig& cluster);

/// Reassembles a dense matrix from a relation with data. Converts sparse
/// payloads to dense.
Result<DenseMatrix> MaterializeDense(const Relation& relation);

/// Reassembles a sparse matrix from a sparse-format relation with data.
Result<SparseMatrix> MaterializeSparse(const Relation& relation);

}  // namespace matopt

#endif  // MATOPT_ENGINE_RELATION_H_
