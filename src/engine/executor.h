#ifndef MATOPT_ENGINE_EXECUTOR_H_
#define MATOPT_ENGINE_EXECUTOR_H_

#include <unordered_map>

#include "common/status.h"
#include "core/graph/graph.h"
#include "core/opt/annotation.h"
#include "core/ops/catalog.h"
#include "engine/exec_stats.h"
#include "engine/relation.h"

namespace matopt {

namespace dist {
class Transport;
}  // namespace dist

/// Result of executing an annotated compute graph.
struct ExecResult {
  ExecStats stats;
  /// Relations of the graph's sink vertices (with data unless dry-run).
  std::unordered_map<int, Relation> sinks;
};

/// Executes annotated compute graphs on the simulated distributed
/// relational engine. Every vertex runs its annotated atomic computation
/// implementation and every edge its annotated transformation; the same
/// accounting code produces simulated time in both data and dry-run modes,
/// so dry-run timings at paper scale match what real execution would
/// charge.
class PlanExecutor {
 public:
  PlanExecutor(const Catalog& catalog, const ClusterConfig& cluster)
      : catalog_(catalog), cluster_(cluster) {}

  /// Executes with caller-provided source relations (keyed by source
  /// vertex id). Each relation's format must match the annotation. When
  /// any input is a dry-run relation the whole execution is dry.
  Result<ExecResult> Execute(const ComputeGraph& graph,
                             const Annotation& annotation,
                             std::unordered_map<int, Relation> inputs) const;

  /// Dry-run convenience: fabricates metadata-only inputs from the
  /// graph's source vertices and executes the plan for its statistics.
  Result<ExecResult> DryRun(const ComputeGraph& graph,
                            const Annotation& annotation) const;

  /// Toggles the zero-copy memory layer (payload stealing, in-place and
  /// fused kernels, view accumulation). Defaults to on unless the
  /// MATOPT_ZERO_COPY environment variable is set to 0. Results are
  /// bit-identical either way; only local memory traffic changes.
  void set_zero_copy(bool enabled) { zero_copy_ = enabled; }
  bool zero_copy() const { return zero_copy_; }

  /// Process default for new executors (MATOPT_ZERO_COPY env, on unless
  /// set to 0).
  static bool DefaultZeroCopy();

  /// Toggles fused-group execution (DESIGN.md §15): when on (and zero-copy
  /// is on), the plan's fused groups — or, for plans without one, the
  /// detector's maximal chains — run as in-place epilogue chains over the
  /// base's output and members pass payloads through. Results are
  /// bit-identical either way; only materialized bytes change.
  void set_fusion(bool enabled) { fusion_ = enabled; }
  bool fusion() const { return fusion_; }

  /// Process default for new executors: FusionEnabled() at construction
  /// time (MATOPT_FUSION env / override / compiled default).
  static bool DefaultFusion();

  /// Number of sharded runtime workers (DESIGN.md §12). When > 0, data-mode
  /// executions run on the multi-worker runtime: relations are
  /// hash-partitioned across workers, operators run per shard, and data
  /// moves through shuffle/broadcast exchanges. 0 (the default unless
  /// MATOPT_WORKERS is set) keeps the single-node path. Sinks are
  /// bit-identical at any worker count.
  void set_dist_workers(int num_workers) {
    dist_workers_ = num_workers < 0 ? 0 : num_workers;
  }
  int dist_workers() const { return dist_workers_; }

  /// Process default for new executors (MATOPT_WORKERS env; unset or
  /// invalid means 0 = single-node).
  static int DefaultDistWorkers();

  /// Overrides the transport distributed executions move data through.
  /// Null (the default) scopes a fresh in-memory transport to each
  /// execution. The pointer is borrowed, not owned.
  void set_transport(dist::Transport* transport) { transport_ = transport; }

 private:
  const Catalog& catalog_;
  const ClusterConfig& cluster_;
  bool zero_copy_ = DefaultZeroCopy();
  bool fusion_ = DefaultFusion();
  int dist_workers_ = DefaultDistWorkers();
  dist::Transport* transport_ = nullptr;
};

}  // namespace matopt

#endif  // MATOPT_ENGINE_EXECUTOR_H_
