#ifndef MATOPT_ENGINE_REOPT_EXECUTOR_H_
#define MATOPT_ENGINE_REOPT_EXECUTOR_H_

#include <unordered_map>

#include "common/status.h"
#include "core/cost/cost_model.h"
#include "core/graph/graph.h"
#include "core/opt/optimizer.h"
#include "engine/executor.h"

namespace matopt {

/// Options for adaptive (re-optimizing) execution.
struct ReoptOptions {
  /// Halt-and-re-optimize threshold on the Sommer-style relative error
  /// between the estimated and the observed sparsity of an intermediate
  /// (Section 7 suggests ~1.2; 1.0 would re-optimize on any deviation).
  double reopt_threshold = 1.2;

  /// Options forwarded to each (re-)optimization.
  OptimizerOptions optimizer;
};

/// Result of an adaptive execution.
struct ReoptResult {
  ExecStats stats;
  std::unordered_map<int, Relation> sinks;
  int reoptimizations = 0;   // times the remaining plan was re-planned
  double opt_seconds = 0.0;  // total optimizer wall-clock across plans
};

/// Executes a compute graph with mid-execution re-optimization — the
/// adaptive scheme the paper sketches at the end of Section 7: optimize
/// with estimated sparsities; after each operation compare the observed
/// output sparsity with the estimate; when the relative error exceeds the
/// threshold, pin the observed values, re-estimate everything downstream,
/// and re-optimize the *remaining* subgraph (computed vertices become
/// fixed-format inputs — the analogue of mid-query re-optimization in
/// relational systems [5, 25]).
///
/// Requires data-carrying input relations (observed sparsity is measured
/// from the actual intermediates).
class ReoptimizingExecutor {
 public:
  ReoptimizingExecutor(const Catalog& catalog, const CostModel& model,
                       const ClusterConfig& cluster)
      : catalog_(catalog), model_(model), cluster_(cluster) {}

  Result<ReoptResult> Execute(const ComputeGraph& graph,
                              std::unordered_map<int, Relation> inputs,
                              const ReoptOptions& options = {}) const;

 private:
  const Catalog& catalog_;
  const CostModel& model_;
  const ClusterConfig& cluster_;
};

}  // namespace matopt

#endif  // MATOPT_ENGINE_REOPT_EXECUTOR_H_
