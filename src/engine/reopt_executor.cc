#include "engine/reopt_executor.h"

#include <algorithm>

#include "core/cost/sparsity.h"
#include "engine/operators.h"

namespace matopt {

namespace {

/// Observed non-zero fraction of a data-carrying relation.
double MeasuredSparsity(const Relation& rel) {
  if (!rel.has_data) return rel.sparsity;
  double nnz = 0.0;
  double entries = 0.0;
  for (const EngineTuple& t : rel.tuples) {
    entries += static_cast<double>(t.rows) * t.cols;
    if (t.sparse) {
      nnz += static_cast<double>(t.sparse->nnz());
    } else if (t.dense) {
      nnz += t.dense->Sparsity() * t.dense->size();
    }
  }
  return entries > 0.0 ? nnz / entries : 1.0;
}

}  // namespace

Result<ReoptResult> ReoptimizingExecutor::Execute(
    const ComputeGraph& graph, std::unordered_map<int, Relation> inputs,
    const ReoptOptions& options) const {
  ReoptResult result;

  // Working copy with estimator-propagated sparsities; inputs take their
  // relations' measured values.
  ComputeGraph work = graph;
  std::vector<std::pair<int, double>> observed;
  for (auto& [v, rel] : inputs) {
    double measured = MeasuredSparsity(rel);
    work.vertex(v).sparsity = measured;
    observed.emplace_back(v, measured);
  }
  PropagateSparsity(&work);

  MATOPT_ASSIGN_OR_RETURN(
      PlanResult plan,
      Optimize(work, catalog_, model_, cluster_, options.optimizer));
  result.opt_seconds += plan.opt_seconds;
  Annotation annotation = std::move(plan.annotation);

  std::unordered_map<int, Relation> live;
  std::vector<int> remaining(graph.num_vertices(), 0);
  for (const Vertex& v : graph.vertices()) {
    for (int in : v.inputs) ++remaining[in];
  }
  std::vector<bool> computed(graph.num_vertices(), false);

  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = work.vertex(v);
    if (vx.op == OpKind::kInput) {
      auto it = inputs.find(v);
      if (it == inputs.end()) {
        return Status::InvalidArgument("missing input relation for v" +
                                       std::to_string(v));
      }
      live[v] = std::move(it->second);
      computed[v] = true;
      continue;
    }

    // Execute this vertex under the current annotation.
    const VertexAnnotation& va = annotation.at(v);
    std::vector<Relation> transformed(vx.inputs.size());
    std::vector<const Relation*> args(vx.inputs.size());
    for (size_t j = 0; j < vx.inputs.size(); ++j) {
      const Relation& src = live.at(vx.inputs[j]);
      const EdgeAnnotation& e = va.input_edges[j];
      if (e.transform.has_value()) {
        MATOPT_ASSIGN_OR_RETURN(
            transformed[j], ExecuteTransform(catalog_, *e.transform, src,
                                             cluster_, &result.stats));
        args[j] = &transformed[j];
      } else {
        args[j] = &src;
      }
    }
    MATOPT_ASSIGN_OR_RETURN(
        Relation out, ExecuteImpl(catalog_, va.impl, va.output_format, args,
                                  vx, cluster_, &result.stats));
    double actual = MeasuredSparsity(out);
    double estimated = vx.sparsity;
    live[v] = std::move(out);
    computed[v] = true;
    observed.emplace_back(v, actual);

    for (int in : vx.inputs) {
      if (--remaining[in] == 0 && graph.Sinks().end() ==
                                      std::find(graph.Sinks().begin(),
                                                graph.Sinks().end(), in)) {
        live.erase(in);
      }
    }

    // Mis-estimation: pin observations, re-estimate downstream, and
    // re-optimize the remaining subgraph with computed vertices as fixed
    // inputs.
    if (SparsityRelativeError(estimated, actual) > options.reopt_threshold) {
      ++result.reoptimizations;
      PropagateSparsity(&work, observed);

      ComputeGraph rest;
      std::vector<int> to_rest(graph.num_vertices(), -1);
      for (int u = 0; u < graph.num_vertices(); ++u) {
        if (!computed[u]) continue;
        if (live.find(u) == live.end()) continue;
        const Relation& rel = live.at(u);
        to_rest[u] = rest.AddInput(rel.type, rel.format,
                                   work.vertex(u).name,
                                   MeasuredSparsity(rel));
      }
      std::vector<int> rest_to_old;
      rest_to_old.resize(rest.num_vertices(), -1);
      for (int u = 0; u < graph.num_vertices(); ++u) {
        if (to_rest[u] >= 0 && to_rest[u] < rest.num_vertices()) {
          rest_to_old[to_rest[u]] = u;
        }
      }
      for (int u = 0; u < graph.num_vertices(); ++u) {
        if (computed[u]) continue;
        std::vector<int> mapped;
        for (int in : work.vertex(u).inputs) mapped.push_back(to_rest[in]);
        MATOPT_ASSIGN_OR_RETURN(
            int nu, rest.AddOp(work.vertex(u).op, std::move(mapped),
                               work.vertex(u).name, work.vertex(u).scalar));
        rest.vertex(nu).sparsity = work.vertex(u).sparsity;
        to_rest[u] = nu;
        rest_to_old.push_back(u);
      }

      MATOPT_ASSIGN_OR_RETURN(
          PlanResult replanned,
          Optimize(rest, catalog_, model_, cluster_, options.optimizer));
      result.opt_seconds += replanned.opt_seconds;
      for (int nu = 0; nu < rest.num_vertices(); ++nu) {
        int old = rest_to_old[nu];
        if (old < 0 || computed[old]) continue;
        VertexAnnotation nva = replanned.annotation.at(nu);
        // Re-map edge producers back to the original vertex ids (the pin
        // formats are already those of the live relations).
        annotation.at(old) = std::move(nva);
      }
    }
  }

  for (int sink : graph.Sinks()) {
    result.sinks.emplace(sink, std::move(live.at(sink)));
  }
  return result;
}

}  // namespace matopt
