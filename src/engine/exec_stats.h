#ifndef MATOPT_ENGINE_EXEC_STATS_H_
#define MATOPT_ENGINE_EXEC_STATS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cluster.h"

namespace matopt {

/// Aggregated outcome of executing one annotated plan on the simulated
/// cluster. `sim_seconds` is the simulated wall-clock time under the
/// machine model; the remaining fields are raw resource totals.
struct ExecStats {
  double sim_seconds = 0.0;
  double flops = 0.0;
  double net_bytes = 0.0;
  double tuples = 0.0;
  double peak_worker_mem_bytes = 0.0;
  double peak_worker_spill_bytes = 0.0;

  struct StageRecord {
    std::string label;
    double seconds = 0.0;
  };
  std::vector<StageRecord> stages;

  std::string ToString() const;
};

/// Accounts one relational operator stage: per-worker compute, network,
/// and disk, plus global tuple counts. `Commit` converts the tallies into
/// simulated seconds (workers proceed in parallel within a stage; the
/// stage ends when the slowest worker finishes) and enforces the memory
/// and spill budgets, reproducing the paper's "Fail" behaviour.
class StageAccountant {
 public:
  StageAccountant(const ClusterConfig& cluster, ExecStats* stats,
                  std::string label);

  void AddFlops(int worker, double flops);
  /// Arithmetic offloaded to the worker's accelerator.
  void AddGpuFlops(int worker, double flops);
  /// Host<->device transfer bytes (PCIe).
  void AddPcie(int worker, double bytes);
  void AddNet(int worker, double sent_bytes);
  void AddDisk(int worker, double bytes);
  void AddTuples(double count);
  /// RAM a worker holds for the whole stage — broadcast replicas, hash
  /// aggregation state, whole single-tuple operands (accumulates).
  void AddWorkerMem(int worker, double bytes);
  /// Transient per-tuple working set; the stage needs the maximum, not the
  /// sum, since tuples stream through one at a time.
  void PeakWorkerMem(int worker, double bytes);
  /// Shuffle-intermediate bytes a worker must spill to disk (accumulates).
  void AddWorkerSpill(int worker, double bytes);

  /// Convenience: broadcast `bytes` held by `owner` to every worker.
  void Broadcast(int owner, double bytes);

  /// Finalizes the stage. Returns OutOfMemory when a worker's resident or
  /// spill footprint exceeds the cluster budget.
  Status Commit();

 private:
  const ClusterConfig& cluster_;
  ExecStats* stats_;
  std::string label_;
  std::vector<double> flops_;
  std::vector<double> gpu_flops_;
  std::vector<double> pcie_;
  std::vector<double> net_;
  std::vector<double> disk_;
  std::vector<double> mem_;
  std::vector<double> work_mem_;
  std::vector<double> spill_;
  double tuples_ = 0.0;
  bool committed_ = false;
};

}  // namespace matopt

#endif  // MATOPT_ENGINE_EXEC_STATS_H_
