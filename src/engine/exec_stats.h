#ifndef MATOPT_ENGINE_EXEC_STATS_H_
#define MATOPT_ENGINE_EXEC_STATS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/cluster.h"
#include "la/kernel_stats.h"

namespace matopt {

/// Host-side allocation/copy behaviour of one execution. These measure
/// the *local* memory traffic of the executor process (not the simulated
/// cluster): payload bytes written through copy paths vs. transferred by
/// reuse, allocations avoided, and BufferPool activity.
///
/// `bytes_copied`/`bytes_moved` and the kernel counters are tallied at
/// sequential points on the coordinating thread, so they are exactly
/// reproducible at any thread count; the pool_* fields come from the
/// process-wide pool counters and depend on scheduling (observability
/// only). In dry-run mode the deterministic fields are a projection of
/// what a data-mode run would do (refcount-1 reuse assumed to succeed),
/// so EXPLAIN can report them at paper scale.
struct MemoryStats {
  double bytes_copied = 0.0;   // payload bytes written via copy paths
  double bytes_moved = 0.0;    // payload bytes reused in place / shared
  int64_t allocs_avoided = 0;  // temporaries never materialized
  int64_t inplace_kernels = 0;  // kernel calls writing into an operand
  int64_t fused_kernels = 0;    // fused-group member kernels applied in place
  int64_t moved_payloads = 0;   // tuple payloads transferred, not copied
  /// Payload bytes fused-group members never materialized: their results
  /// were written in place over the base's output instead of being
  /// allocated and copied (DESIGN.md §15).
  double fused_bytes_avoided = 0.0;
  int64_t fused_groups = 0;  // fused groups that actually executed
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t pool_bytes_recycled = 0;

  double pool_hit_rate() const {
    int64_t total = pool_hits + pool_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(pool_hits) /
                            static_cast<double>(total);
  }

  std::string ToString() const;
};

/// One exchange stage of a distributed execution: the simulated
/// projection (what the dry pass predicted the exchanges would carry) side
/// by side with what the transport actually measured. For all-dense plans
/// the two agree exactly — tuple counts always, bytes because both sides
/// charge 8 bytes per entry; sparse stages diverge where the estimated
/// sparsity missed the measured one.
struct DistExchangeRecord {
  std::string label;                      // "v3:MmTilesShuffle", ...
  double predicted_shuffle_bytes = 0.0;   // repartition traffic on the wire
  double measured_shuffle_bytes = 0.0;
  double predicted_broadcast_bytes = 0.0;  // replication traffic on the wire
  double measured_broadcast_bytes = 0.0;
  double predicted_tuples = 0.0;  // deliveries incl. worker-local ones
  double measured_tuples = 0.0;
  double shard_skew = 1.0;  // max/mean shard bytes of the stage output
};

/// Measured outcome of the sharded multi-worker runtime (DESIGN.md §12).
/// Empty (num_workers == 0) when the plan ran single-node. All fields
/// except `worker_busy_seconds` are deterministic at any worker count;
/// busy times depend on scheduling (observability only).
struct DistStats {
  int num_workers = 0;
  double bytes_shuffled = 0.0;    // remote repartition bytes, all stages
  double bytes_broadcast = 0.0;   // remote replication bytes, all stages
  double tuples_routed = 0.0;     // deliveries incl. worker-local ones
  int64_t messages = 0;           // transport messages (remote only)
  double max_shard_skew = 1.0;
  std::vector<double> worker_busy_seconds;
  std::vector<DistExchangeRecord> stages;

  /// Per-stage "predicted vs measured" table for EXPLAIN output.
  std::string ComparisonTable() const;
  std::string ToString() const;
};

/// Logical-rewrite provenance of the plan an execution ran (DESIGN.md
/// §16). Populated by planning front-ends (explain) from
/// OptimizeWithRewrites — the executor itself never rewrites. Kept as
/// plain strings/numbers so the engine layer does not depend on
/// core/rewrite. Default state (enabled == false) means the rewriter was
/// off or never consulted.
struct RewriteStats {
  bool enabled = false;
  bool rewritten = false;   // a non-empty chain won the plan search
  bool exact = true;        // every applied step preserves IEEE arithmetic
  bool budget_hit = false;  // enumeration stopped at its saturation budget
  int candidates = 0;       // candidate DAGs costed (incl. the original)
  double baseline_cost = 0.0;  // best fused cost of the unrewritten DAG
  double chosen_cost = 0.0;    // fused cost of the winning DAG
  /// One "rule at vN: sketch" line per applied step, in order.
  std::vector<std::string> chain;

  double CostDelta() const { return baseline_cost - chosen_cost; }
  /// Multi-line EXPLAIN section; empty when !enabled.
  std::string ToString() const;
};

/// Serving-layer counters of the optimizer service (DESIGN.md §17).
/// Populated by src/serve (the engine layer never serves); kept here —
/// like RewriteStats — as plain numbers so explain and the daemon's STATS
/// verb share one rendering. Default state (requests == 0) means the run
/// never went through the service.
struct ServeStats {
  int64_t requests = 0;
  int64_t cache_hits = 0;        // exact-fingerprint plan reuse
  int64_t cache_misses = 0;      // full OptimizeWithRewrites searches
  int64_t cache_evictions = 0;   // LRU entries dropped at the size bound
  int64_t param_hits = 0;        // dimension-only reuse served sans search
  int64_t param_rejects = 0;     // reuse refused (envelope / validation)
  int64_t admission_rejects = 0; // tenant over its concurrent-request cap
  int64_t budget_rejects = 0;    // plan cost over the tenant budget
  double optimize_seconds = 0.0;  // wall-clock spent in plan searches
  double execute_seconds = 0.0;   // wall-clock spent executing plans
  /// Cold-search wall-clock the cache amortized away: the sum, over every
  /// hit, of the search time a missing request would have paid.
  double optimize_seconds_saved = 0.0;

  double hit_rate() const {
    int64_t lookups = cache_hits + param_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits + param_hits) /
                              static_cast<double>(lookups);
  }

  /// Multi-line EXPLAIN/STATS section; empty when requests == 0.
  std::string ToString() const;
};

/// Aggregated outcome of executing one annotated plan on the simulated
/// cluster. `sim_seconds` is the simulated wall-clock time under the
/// machine model; the remaining fields are raw resource totals.
struct ExecStats {
  double sim_seconds = 0.0;
  double flops = 0.0;
  double net_bytes = 0.0;
  double tuples = 0.0;
  double peak_worker_mem_bytes = 0.0;
  double peak_worker_spill_bytes = 0.0;
  MemoryStats memory;

  struct StageRecord {
    std::string label;
    double seconds = 0.0;
    /// Measured local-kernel activity while this stage executed (data
    /// mode only; all-zero in dry runs). Flop/byte tallies are
    /// shape-derived and deterministic; kernel_seconds is wall-clock
    /// (observability only, like the pool counters).
    double kernel_flops = 0.0;
    double kernel_bytes = 0.0;
    double kernel_seconds = 0.0;
    /// Local memory traffic attributed to this stage (same deterministic
    /// tallies as MemoryStats, sliced per stage so fused and unfused
    /// stages are separately attributable).
    double mem_bytes_copied = 0.0;
    double mem_bytes_moved = 0.0;
    double mem_fused_bytes_avoided = 0.0;
    int64_t mem_fused_kernels = 0;
  };
  std::vector<StageRecord> stages;

  /// Measured local-kernel totals over the whole execution (roofline
  /// accounting, DESIGN.md §13). All-zero for dry runs.
  KernelCounters kernels;

  /// Distributed-runtime measurements; default-empty for single-node runs.
  DistStats dist;

  /// Logical-rewrite provenance; default-empty unless a planning
  /// front-end ran OptimizeWithRewrites and filled it in.
  RewriteStats rewrite;

  /// Optimizer-service counters; default-empty unless the run was served
  /// by src/serve (DESIGN.md §17).
  ServeStats serve;

  std::string ToString() const;

  /// Human-readable roofline view of `kernels`: arithmetic intensity and
  /// achieved FLOPS of the GEMM and element-wise paths. Empty when no
  /// kernel activity was recorded (e.g. dry runs).
  std::string RooflineString() const;
};

/// Accounts one relational operator stage: per-worker compute, network,
/// and disk, plus global tuple counts. `Commit` converts the tallies into
/// simulated seconds (workers proceed in parallel within a stage; the
/// stage ends when the slowest worker finishes) and enforces the memory
/// and spill budgets, reproducing the paper's "Fail" behaviour.
class StageAccountant {
 public:
  StageAccountant(const ClusterConfig& cluster, ExecStats* stats,
                  std::string label);

  void AddFlops(int worker, double flops);
  /// Arithmetic offloaded to the worker's accelerator.
  void AddGpuFlops(int worker, double flops);
  /// Host<->device transfer bytes (PCIe).
  void AddPcie(int worker, double bytes);
  void AddNet(int worker, double sent_bytes);
  void AddDisk(int worker, double bytes);
  void AddTuples(double count);
  /// RAM a worker holds for the whole stage — broadcast replicas, hash
  /// aggregation state, whole single-tuple operands (accumulates).
  void AddWorkerMem(int worker, double bytes);
  /// Transient per-tuple working set; the stage needs the maximum, not the
  /// sum, since tuples stream through one at a time.
  void PeakWorkerMem(int worker, double bytes);
  /// Shuffle-intermediate bytes a worker must spill to disk (accumulates).
  void AddWorkerSpill(int worker, double bytes);

  /// Convenience: broadcast `bytes` held by `owner` to every worker.
  void Broadcast(int owner, double bytes);

  /// Finalizes the stage. Returns OutOfMemory when a worker's resident or
  /// spill footprint exceeds the cluster budget.
  Status Commit();

 private:
  const ClusterConfig& cluster_;
  ExecStats* stats_;
  std::string label_;
  std::vector<double> flops_;
  std::vector<double> gpu_flops_;
  std::vector<double> pcie_;
  std::vector<double> net_;
  std::vector<double> disk_;
  std::vector<double> mem_;
  std::vector<double> work_mem_;
  std::vector<double> spill_;
  double tuples_ = 0.0;
  bool committed_ = false;
};

}  // namespace matopt

#endif  // MATOPT_ENGINE_EXEC_STATS_H_
