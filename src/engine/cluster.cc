#include "engine/cluster.h"

#include <sstream>

namespace matopt {

std::string ClusterConfig::ToString() const {
  std::ostringstream out;
  out << "workers=" << num_workers << " flops/s=" << flops_per_sec
      << " net B/s=" << net_bytes_per_sec
      << " tuple-overhead=" << per_tuple_overhead_sec
      << " op-latency=" << per_op_latency_sec
      << " mem=" << worker_mem_bytes << " spill=" << worker_spill_bytes;
  return out.str();
}

ClusterConfig SimSqlProfile(int num_workers) {
  ClusterConfig c;
  c.num_workers = num_workers;
  c.per_op_latency_sec = 2.0;
  c.per_tuple_overhead_sec = 1.0e-3;
  c.net_bytes_per_sec = 1.2e8;
  c.worker_mem_bytes = 68.0e9;
  return c;
}

ClusterConfig PlinyProfile(int num_workers) {
  ClusterConfig c;
  c.num_workers = num_workers;
  // PlinyCompute is a C++ in-memory engine on r5dn instances: MKL-class
  // BLAS rates, 25 Gbps networking, and no per-job launch latency.
  c.per_op_latency_sec = 0.1;
  c.per_tuple_overhead_sec = 2.0e-5;
  c.flops_per_sec = 2.5e11;
  c.net_bytes_per_sec = 3.0e9;
  c.disk_bytes_per_sec = 2.0e9;
  c.worker_mem_bytes = 64.0e9;
  c.worker_spill_bytes = 150.0e9;
  return c;
}

}  // namespace matopt
