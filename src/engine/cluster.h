#ifndef MATOPT_ENGINE_CLUSTER_H_
#define MATOPT_ENGINE_CLUSTER_H_

#include <cstdint>
#include <string>

namespace matopt {

/// Machine model of the simulated distributed relational engine. The paper
/// runs on SimSQL (Hadoop-based) and PlinyCompute clusters of EC2
/// r5d/r5dn.2xlarge nodes; we model the cost-relevant parameters of such a
/// cluster. All times derived from this model are *simulated seconds*.
struct ClusterConfig {
  /// Number of worker machines.
  int num_workers = 10;

  /// Effective per-worker dense FLOP rate (accounts for BLAS efficiency
  /// and, for the SimSQL profile, the Java/Hadoop execution overhead).
  double flops_per_sec = 4.0e10;

  /// Per-worker network bandwidth, bytes/second.
  double net_bytes_per_sec = 1.2e8;

  /// Per-worker materialization (disk/serialization) rate, bytes/second.
  double disk_bytes_per_sec = 4.0e8;

  /// Fixed cost of producing / routing one tuple (serialization, hashing,
  /// dispatch). Dominates plans that shatter matrices into many tiles.
  double per_tuple_overhead_sec = 1.0e-3;

  /// Fixed per-relational-operator startup latency. Large for the
  /// Hadoop-based SimSQL profile (job launch), small for PlinyCompute.
  double per_op_latency_sec = 2.0;

  /// Per-worker RAM available to hold operator state.
  double worker_mem_bytes = 68.0e9;

  /// Per-worker spill capacity for shuffle intermediates. Exceeding it
  /// makes the plan fail, reproducing the paper's "Fail" entries
  /// ("crashed, typically due to too much intermediate data").
  double worker_spill_bytes = 150.0e9;

  /// Largest matrix the engine will broadcast to every worker.
  double broadcast_cap_bytes = 16.0e9;

  /// Largest payload of any one tuple (bounds single-tuple layouts).
  double single_tuple_cap_bytes = 2.0e10;

  /// Accelerators (Section 4.2: "implementations running on CPU, or
  /// accelerators such as GPUs ... i.f takes into account the hardware
  /// available"). Zero GPUs disables every GPU implementation.
  int gpus_per_worker = 0;
  double gpu_flops_per_sec = 5.0e12;
  double gpu_mem_bytes = 16.0e9;
  /// Host<->device transfer bandwidth (PCIe).
  double pcie_bytes_per_sec = 1.2e10;

  std::string ToString() const;
};

/// Profile matching the paper's SimSQL setup (Hadoop-based: high per-job
/// latency, ten r5d.2xlarge workers by default).
ClusterConfig SimSqlProfile(int num_workers = 10);

/// Profile matching the paper's PlinyCompute setup (in-memory relational
/// engine: low latency, faster network path).
ClusterConfig PlinyProfile(int num_workers = 10);

}  // namespace matopt

#endif  // MATOPT_ENGINE_CLUSTER_H_
