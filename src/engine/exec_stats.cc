#include "engine/exec_stats.h"

#include <algorithm>
#include <sstream>

#include "common/units.h"
#include "la/simd.h"

namespace matopt {

std::string MemoryStats::ToString() const {
  std::ostringstream out;
  out << "copied " << FormatBytes(bytes_copied) << ", moved "
      << FormatBytes(bytes_moved) << ", allocs avoided " << allocs_avoided
      << ", in-place " << inplace_kernels << ", fused " << fused_kernels
      << ", pool hit rate " << static_cast<int>(pool_hit_rate() * 100.0 + 0.5)
      << "% (" << FormatBytes(static_cast<double>(pool_bytes_recycled))
      << " recycled)";
  if (fused_groups > 0) {
    out << ", fusion avoided " << FormatBytes(fused_bytes_avoided) << " in "
        << fused_groups << " group" << (fused_groups == 1 ? "" : "s");
  }
  return out.str();
}

std::string ExecStats::ToString() const {
  std::ostringstream out;
  out << "sim time " << FormatHms(sim_seconds) << ", flops " << flops
      << ", net " << FormatBytes(net_bytes) << ", tuples " << tuples
      << ", peak mem/worker " << FormatBytes(peak_worker_mem_bytes);
  if (dist.num_workers > 0) out << "; " << dist.ToString();
  if (serve.requests > 0) out << "\n" << serve.ToString();
  return out.str();
}

std::string ServeStats::ToString() const {
  if (requests == 0) return "";
  std::ostringstream out;
  out << "serve: " << requests << " request" << (requests == 1 ? "" : "s")
      << ", cache " << cache_hits << " hit" << (cache_hits == 1 ? "" : "s")
      << " / " << param_hits << " param / " << cache_misses << " miss / "
      << cache_evictions << " evicted ("
      << static_cast<int>(hit_rate() * 100.0 + 0.5) << "% hit rate)\n";
  if (param_rejects > 0) {
    out << "  param reuse rejected " << param_rejects << " time"
        << (param_rejects == 1 ? "" : "s") << " (envelope/validation)\n";
  }
  if (admission_rejects > 0 || budget_rejects > 0) {
    out << "  rejected: " << admission_rejects << " admission, "
        << budget_rejects << " budget\n";
  }
  out << "  latency: optimize " << FormatMs(optimize_seconds) << ", execute "
      << FormatMs(execute_seconds) << ", search amortized "
      << FormatMs(optimize_seconds_saved) << " saved";
  if (optimize_seconds + optimize_seconds_saved > 0.0) {
    out << " ("
        << static_cast<int>(100.0 * optimize_seconds_saved /
                                (optimize_seconds + optimize_seconds_saved) +
                            0.5)
        << "% of total search latency)";
  }
  out << "\n";
  return out.str();
}

std::string RewriteStats::ToString() const {
  if (!enabled) return "";
  std::ostringstream out;
  out << "logical rewriter: " << candidates << " candidate DAG"
      << (candidates == 1 ? "" : "s");
  if (budget_hit) out << " (saturation budget hit)";
  out << "\n";
  if (!rewritten) {
    out << "  chosen: original DAG (no rewrite beat cost " << baseline_cost
        << ")\n";
    return out.str();
  }
  out << "  chosen: rewritten DAG (" << (exact ? "exact" : "reassociating")
      << " chain), cost " << baseline_cost << " -> " << chosen_cost
      << " (delta " << CostDelta() << ")\n";
  for (const std::string& step : chain) {
    out << "  rewrite: " << step << "\n";
  }
  return out.str();
}

std::string ExecStats::RooflineString() const {
  if (kernels.gemm_calls == 0 && kernels.elem_calls == 0) return "";
  std::ostringstream out;
  out << "local kernel roofline (" << SimdIsaName() << " path on "
      << kernels.gemm_simd_calls + kernels.elem_simd_calls << "/"
      << kernels.gemm_calls + kernels.elem_calls << " calls):\n";
  if (kernels.gemm_calls > 0) {
    out << "  gemm: " << FormatFlops(kernels.gemm_flops) << " over "
        << FormatBytes(kernels.gemm_bytes) << " ("
        << FormatIntensity(kernels.gemm_flops /
                           std::max(1.0, kernels.gemm_bytes))
        << ")";
    if (kernels.gemm_seconds > 0.0) {
      out << ", achieved "
          << FormatFlopRate(kernels.gemm_flops / kernels.gemm_seconds)
          << " in " << kernels.gemm_calls << " calls";
    }
    out << "\n";
  }
  if (kernels.elem_calls > 0) {
    out << "  elementwise: " << FormatFlops(kernels.elem_flops) << " over "
        << FormatBytes(kernels.elem_bytes) << " ("
        << FormatIntensity(kernels.elem_flops /
                           std::max(1.0, kernels.elem_bytes))
        << "), " << kernels.elem_calls << " calls\n";
  }
  return out.str();
}

std::string DistStats::ToString() const {
  std::ostringstream out;
  out << "dist " << num_workers << " workers: shuffled "
      << FormatBytes(bytes_shuffled) << ", broadcast "
      << FormatBytes(bytes_broadcast) << ", routed " << tuples_routed
      << " tuples (" << messages << " messages), max skew " << max_shard_skew;
  return out.str();
}

std::string DistStats::ComparisonTable() const {
  std::ostringstream out;
  out << "distributed exchanges (" << num_workers
      << " workers, predicted | measured):\n";
  for (const DistExchangeRecord& s : stages) {
    out << "  " << s.label << ": shuffle "
        << FormatBytes(s.predicted_shuffle_bytes) << " | "
        << FormatBytes(s.measured_shuffle_bytes) << ", broadcast "
        << FormatBytes(s.predicted_broadcast_bytes) << " | "
        << FormatBytes(s.measured_broadcast_bytes) << ", tuples "
        << s.predicted_tuples << " | " << s.measured_tuples << ", skew "
        << s.shard_skew << "\n";
  }
  out << "  total: shuffled " << FormatBytes(bytes_shuffled)
      << ", broadcast " << FormatBytes(bytes_broadcast) << ", routed "
      << tuples_routed << " tuples, max skew " << max_shard_skew;
  return out.str();
}

StageAccountant::StageAccountant(const ClusterConfig& cluster,
                                 ExecStats* stats, std::string label)
    : cluster_(cluster),
      stats_(stats),
      label_(std::move(label)),
      flops_(cluster.num_workers, 0.0),
      gpu_flops_(cluster.num_workers, 0.0),
      pcie_(cluster.num_workers, 0.0),
      net_(cluster.num_workers, 0.0),
      disk_(cluster.num_workers, 0.0),
      mem_(cluster.num_workers, 0.0),
      work_mem_(cluster.num_workers, 0.0),
      spill_(cluster.num_workers, 0.0) {}

void StageAccountant::AddFlops(int worker, double flops) {
  flops_[worker] += flops;
}
void StageAccountant::AddGpuFlops(int worker, double flops) {
  gpu_flops_[worker] += flops;
}
void StageAccountant::AddPcie(int worker, double bytes) {
  pcie_[worker] += bytes;
}
void StageAccountant::AddNet(int worker, double sent_bytes) {
  net_[worker] += sent_bytes;
}
void StageAccountant::AddDisk(int worker, double bytes) {
  disk_[worker] += bytes;
}
void StageAccountant::AddTuples(double count) { tuples_ += count; }
void StageAccountant::AddWorkerMem(int worker, double bytes) {
  mem_[worker] += bytes;
}
void StageAccountant::PeakWorkerMem(int worker, double bytes) {
  work_mem_[worker] = std::max(work_mem_[worker], bytes);
}
void StageAccountant::AddWorkerSpill(int worker, double bytes) {
  spill_[worker] += bytes;
}

void StageAccountant::Broadcast(int owner, double bytes) {
  // Tree/pipelined broadcast: every worker relays the payload once, so the
  // stage costs ~bytes of network time per worker rather than serializing
  // (K-1) sends through the owner's NIC.
  (void)owner;
  for (int w = 0; w < cluster_.num_workers; ++w) {
    AddNet(w, bytes);
    AddWorkerMem(w, bytes);
  }
}

Status StageAccountant::Commit() {
  committed_ = true;
  double slowest = 0.0;
  double total_flops = 0.0;
  double total_net = 0.0;
  for (int w = 0; w < cluster_.num_workers; ++w) {
    double t = flops_[w] / cluster_.flops_per_sec +
               gpu_flops_[w] / cluster_.gpu_flops_per_sec +
               pcie_[w] / cluster_.pcie_bytes_per_sec +
               net_[w] / cluster_.net_bytes_per_sec +
               disk_[w] / cluster_.disk_bytes_per_sec;
    total_flops += gpu_flops_[w];
    slowest = std::max(slowest, t);
    total_flops += flops_[w];
    total_net += net_[w];
  }
  double seconds = cluster_.per_op_latency_sec + slowest +
                   tuples_ * cluster_.per_tuple_overhead_sec /
                       static_cast<double>(cluster_.num_workers);
  stats_->sim_seconds += seconds;
  stats_->flops += total_flops;
  stats_->net_bytes += total_net;
  stats_->tuples += tuples_;
  ExecStats::StageRecord record;
  record.label = label_;
  record.seconds = seconds;
  stats_->stages.push_back(std::move(record));

  for (int w = 0; w < cluster_.num_workers; ++w) {
    double ram = mem_[w] + work_mem_[w];
    stats_->peak_worker_mem_bytes =
        std::max(stats_->peak_worker_mem_bytes, ram);
    stats_->peak_worker_spill_bytes =
        std::max(stats_->peak_worker_spill_bytes, spill_[w]);
    if (ram > cluster_.worker_mem_bytes) {
      return Status::OutOfMemory(label_ + ": worker " + std::to_string(w) +
                                 " needs " + std::to_string(ram) +
                                 " bytes of RAM");
    }
    if (spill_[w] > cluster_.worker_spill_bytes) {
      return Status::OutOfMemory(label_ + ": worker " + std::to_string(w) +
                                 " spills " + std::to_string(spill_[w]) +
                                 " bytes of intermediate data");
    }
  }
  return Status::OK();
}

}  // namespace matopt
