#include "engine/operators.h"

#include <algorithm>

namespace matopt {

namespace {

const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }

}  // namespace

Result<Relation> ExecuteTransform(const Catalog& catalog, TransformKind kind,
                                  const Relation& input,
                                  const ClusterConfig& cluster,
                                  ExecStats* stats) {
  ArgInfo arg{input.type, input.format, input.sparsity};
  auto target = catalog.TransformOutputFormat(kind, arg, cluster);
  if (!target.has_value()) {
    return Status::TypeError(std::string("transformation ") +
                             TransformKindName(kind) +
                             " is infeasible for this relation");
  }
  const Format& out_fmt = FormatOf(*target);
  double out_sparsity = out_fmt.sparse() ? input.sparsity : 1.0;

  // Accounting: a transformation repartitions every source tuple (worst
  // case all bytes cross the network) and materializes the target tuples.
  // Re-chunking to a single tuple runs the two-stage ROWMATRIX/COLMATRIX
  // aggregation of Section 2.1 and lands all bytes on one worker.
  FormatStats src_stats =
      ComputeFormatStats(input.type, FormatOf(input.format), input.sparsity);
  FormatStats dst_stats =
      ComputeFormatStats(input.type, out_fmt, out_sparsity);
  bool to_single = out_fmt.layout == Layout::kSingleTuple ||
                   out_fmt.layout == Layout::kSpSingleCsr;

  StageAccountant acct(cluster, stats,
                       std::string("transform:") + TransformKindName(kind));
  std::vector<double> in_bytes = input.WorkerBytes(cluster.num_workers);
  // A transformation re-materializes the relation: the source is read out
  // and the target chunking written fresh. Charged identically in dry-run
  // and data mode (shape-derived).
  stats->memory.bytes_copied += dst_stats.total_bytes;
  for (int w = 0; w < cluster.num_workers; ++w) {
    acct.AddNet(w, in_bytes[w]);
    acct.PeakWorkerMem(w, src_stats.max_tuple_bytes +
                              dst_stats.max_tuple_bytes);
    acct.AddFlops(w, in_bytes[w] / 8.0);  // scan/copy cost
  }
  acct.AddTuples(static_cast<double>(src_stats.num_tuples) +
                 static_cast<double>(dst_stats.num_tuples));
  if (to_single) {
    // The ROWMATRIX/COLMATRIX aggregation assembles the whole matrix on
    // one worker, in memory.
    int owner = WorkerFor(0, 0, cluster.num_workers);
    acct.AddWorkerMem(owner, dst_stats.total_bytes);
    acct.AddDisk(owner, dst_stats.total_bytes);
  } else {
    for (int w = 0; w < cluster.num_workers; ++w) {
      acct.AddDisk(w, dst_stats.total_bytes / cluster.num_workers);
    }
  }
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  // Data path: reassemble and re-chunk. (At test scale this is exact; in
  // dry-run mode only the metadata relation is produced.)
  if (!input.has_data) {
    return MakeDryRelation(input.type, *target, out_sparsity, cluster);
  }
  if (out_fmt.sparse()) {
    MATOPT_ASSIGN_OR_RETURN(SparseMatrix sparse, MaterializeSparse(input));
    return MakeSparseRelation(sparse, *target, cluster);
  }
  MATOPT_ASSIGN_OR_RETURN(DenseMatrix dense, MaterializeDense(input));
  return MakeRelation(dense, *target, cluster);
}

}  // namespace matopt
