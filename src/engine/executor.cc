#include "engine/executor.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/analyze.h"
#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "core/fusion/fusion.h"
#include "dist/runtime.h"
#include "engine/operators.h"
#include "la/fused.h"
#include "la/kernels.h"

namespace matopt {

namespace {

// Payload computation is data-parallel across tuples: every task writes
// one slot of an index-addressed vector and the results are installed in
// the payload map sequentially afterwards, so the output is bit-identical
// to a sequential run at any thread count. Stage *accounting* stays on
// the coordinating thread (it is O(tuples) scalar work) which keeps
// ExecStats totals exactly reproducible. Nested kernels (Gemm etc.) run
// inline when invoked from a payload task.

/// Runs fn(i) for i in [0, n) on the default pool, one tuple per grain
/// unit (each tuple is already a large block of numeric work).
template <typename Fn>
void ParallelTuples(int64_t n, Fn&& fn) {
  ParallelFor(0, n, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) fn(i);
  });
}

const Format& FormatOf(FormatId id) { return BuiltinFormats()[id]; }

uint64_t Key(int64_t r, int64_t c) {
  return (static_cast<uint64_t>(r) << 32) | static_cast<uint64_t>(c);
}

using TupleMap = std::unordered_map<uint64_t, const EngineTuple*>;

TupleMap MapTuples(const Relation& rel) {
  TupleMap map;
  map.reserve(rel.tuples.size());
  for (const EngineTuple& t : rel.tuples) map[Key(t.r, t.c)] = &t;
  return map;
}

/// Shared execution context for one atomic computation implementation.
struct Ctx {
  const ClusterConfig& cluster;
  ExecStats* stats;
  const Vertex& vertex;
  FormatId out_format;
  bool data;        // inputs carry real payloads
  bool gpu = false;  // offload arithmetic to the worker's accelerator
  ExecOptions opts;

  int workers() const { return cluster.num_workers; }
  MemoryStats* mem() const { return &stats->memory; }
};

double TupleBytes(const EngineTuple& t) {
  return 8.0 * static_cast<double>(t.rows) * static_cast<double>(t.cols);
}

/// Whether arg tuple i's dense payload may be reused as this vertex's
/// output buffer. Decided on the coordinating thread: the plan proved the
/// producer dead after this edge (`owned`), and in data mode the relation
/// holds the only reference (payloads shared via a passthrough earlier in
/// the plan are left alone). Dry-run mode counts the plan-level decision
/// as a projection so EXPLAIN reports reuse at paper scale.
bool StealDecision(const Ctx& ctx, const ExecInput& arg, size_t i) {
  if (!ctx.opts.zero_copy || arg.owned == nullptr) return false;
  if (!ctx.data) return true;
  const auto& payload = arg.owned->tuples[i].dense;
  return payload != nullptr && payload.use_count() == 1;
}

/// Mutable handle on a stolen payload. Safe because every payload is
/// created via make_shared<DenseMatrix> (the object itself is not const)
/// and the refcount-1 check ran on the coordinating thread before any
/// parallel work.
std::shared_ptr<DenseMatrix> StealPayload(const ExecInput& arg, size_t i) {
  return std::const_pointer_cast<DenseMatrix>(arg.owned->tuples[i].dense);
}

/// Tallies one output tuple produced by an element-wise stage: reused in
/// place (moved) or freshly materialized (copied). Called sequentially.
void CountElemOutput(const Ctx& ctx, const EngineTuple& t, bool in_place) {
  if (in_place) {
    ctx.mem()->bytes_moved += TupleBytes(t);
    ++ctx.mem()->inplace_kernels;
    ++ctx.mem()->allocs_avoided;
  } else {
    ctx.mem()->bytes_copied += TupleBytes(t);
  }
}

/// Output relation for a fused-group member: its value was already
/// applied in place over the group base's output, so the skeleton is
/// built normally (same placement/accounting) and payloads are shared
/// from `src` — a pointer transfer per tuple, no allocation, no copy.
/// Those never-materialized bytes are the fusion win and are tallied as
/// such (identically in dry and data mode — the decision is plan-level).
Relation FinishPassthrough(const Ctx& ctx, const Relation& src) {
  double out_sparsity =
      FormatOf(ctx.out_format).sparse() ? ctx.vertex.sparsity : 1.0;
  Relation out = MakeDryRelation(ctx.vertex.type, ctx.out_format, out_sparsity,
                                 ctx.cluster);
  TupleMap m;
  if (ctx.data) {
    out.has_data = true;
    m = MapTuples(src);
  }
  for (EngineTuple& t : out.tuples) {
    ctx.mem()->fused_bytes_avoided += TupleBytes(t);
    ++ctx.mem()->moved_payloads;
    ++ctx.mem()->fused_kernels;
    if (ctx.data) t.dense = m.at(Key(t.r, t.c))->dense;
  }
  return out;
}

/// Charges arithmetic either to the CPU or, for GPU implementations, to
/// the device (plus the host<->device staging transfer).
void ChargeCompute(const Ctx& ctx, StageAccountant& acct, int worker,
                   double flops, double staged_bytes) {
  if (ctx.gpu) {
    acct.AddGpuFlops(worker, flops);
    acct.AddPcie(worker, staged_bytes);
  } else {
    acct.AddFlops(worker, flops);
  }
}

/// Builds the output relation skeleton (deterministic chunking/placement)
/// and, when data is present, installs the computed payloads.
Relation FinishOutput(const Ctx& ctx,
                      std::unordered_map<uint64_t, DenseMatrix>* payloads) {
  double out_sparsity =
      FormatOf(ctx.out_format).sparse() ? ctx.vertex.sparsity : 1.0;
  Relation out = MakeDryRelation(ctx.vertex.type, ctx.out_format, out_sparsity,
                                 ctx.cluster);
  if (ctx.data && payloads != nullptr) {
    out.has_data = true;
    for (EngineTuple& t : out.tuples) {
      auto it = payloads->find(Key(t.r, t.c));
      if (it != payloads->end()) {
        t.dense = std::make_shared<DenseMatrix>(std::move(it->second));
      } else {
        t.dense = std::make_shared<DenseMatrix>(t.rows, t.cols);
      }
    }
  }
  return out;
}

Relation FinishSparseOutput(
    const Ctx& ctx, std::unordered_map<uint64_t, SparseMatrix>* payloads) {
  Relation out = MakeDryRelation(ctx.vertex.type, ctx.out_format,
                                 ctx.vertex.sparsity, ctx.cluster);
  if (ctx.data && payloads != nullptr) {
    out.has_data = true;
    for (EngineTuple& t : out.tuples) {
      auto it = payloads->find(Key(t.r, t.c));
      if (it != payloads->end()) {
        t.sparse = std::make_shared<SparseMatrix>(std::move(it->second));
        t.sparsity = t.sparse->Sparsity();
      } else {
        t.sparse = std::make_shared<SparseMatrix>(t.rows, t.cols);
        t.sparsity = 0.0;
      }
    }
  }
  return out;
}

double OutTupleBytes(const Ctx& ctx) {
  ChunkDims d = ChunkDimsFor(ctx.vertex.type, FormatOf(ctx.out_format));
  return 8.0 * static_cast<double>(d.rows) * static_cast<double>(d.cols);
}

double TotalOutBytes(const Ctx& ctx) {
  return ctx.vertex.type.DenseBytes();
}

/// Re-partition accounting for one tuple in a shuffle join: the tuple
/// crosses the network (worst case) and stays resident on its worker.
void AccountRepartition(StageAccountant& acct, const EngineTuple& t) {
  acct.AddNet(t.worker, t.Bytes(false));
}

// ---------------------------------------------------------------------
// MatMul implementations.

Result<Relation> ExecMmLocalSingle(const Ctx& ctx, const Relation& a,
                                   const Relation& b, bool sparse_lhs) {
  const EngineTuple& ta = a.tuples[0];
  const EngineTuple& tb = b.tuples[0];
  StageAccountant acct(ctx.cluster, ctx.stats, "mm:local-single");
  acct.AddNet(tb.worker, tb.Bytes(FormatOf(b.format).sparse()));
  double flops = 2.0 * static_cast<double>(ta.rows) *
                 static_cast<double>(ta.cols) * static_cast<double>(tb.cols) *
                 (sparse_lhs ? ta.sparsity : 1.0);
  ChargeCompute(ctx, acct, ta.worker, flops,
                ta.Bytes(sparse_lhs) + tb.Bytes(false) + TotalOutBytes(ctx));
  acct.AddWorkerMem(ta.worker,
                    ta.Bytes(sparse_lhs) + tb.Bytes(false) + TotalOutBytes(ctx));
  acct.AddDisk(ta.worker, TotalOutBytes(ctx));
  acct.AddTuples(3);
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    payloads.emplace(Key(0, 0), sparse_lhs ? SpMm(*ta.sparse, *tb.dense)
                                           : Gemm(*ta.dense, *tb.dense));
  }
  return FinishOutput(ctx, &payloads);
}

/// row-strips (dense or sparse CSR) x broadcast single -> row strips.
Result<Relation> ExecMmStripsBcastSingle(const Ctx& ctx, const Relation& a,
                                         const Relation& b, bool sparse_lhs) {
  const EngineTuple& tb = b.tuples[0];
  StageAccountant acct(ctx.cluster, ctx.stats, "mm:strips*bcast-single");
  acct.Broadcast(tb.worker, tb.Bytes(false));
  double out_tuple_bytes = OutTupleBytes(ctx);
  for (const EngineTuple& t : a.tuples) {
    double flops = 2.0 * static_cast<double>(t.rows) *
                   static_cast<double>(t.cols) *
                   static_cast<double>(tb.cols) *
                   (sparse_lhs ? t.sparsity : 1.0);
    ChargeCompute(ctx, acct, t.worker, flops,
                  t.Bytes(sparse_lhs) + tb.Bytes(false) + out_tuple_bytes);
    acct.PeakWorkerMem(t.worker, t.Bytes(sparse_lhs) + out_tuple_bytes);
    acct.AddDisk(t.worker, out_tuple_bytes);
  }
  acct.AddTuples(2.0 * a.tuples.size() + ctx.workers());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    std::vector<DenseMatrix> outs(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      const EngineTuple& t = a.tuples[i];
      outs[i] = sparse_lhs ? SpMm(*t.sparse, *tb.dense)
                           : Gemm(*t.dense, *tb.dense);
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      payloads.emplace(Key(a.tuples[i].r, 0), std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

/// broadcast single (dense or sparse) x col-strips -> col strips.
Result<Relation> ExecMmBcastSingleStrips(const Ctx& ctx, const Relation& a,
                                         const Relation& b, bool sparse_lhs) {
  const EngineTuple& ta = a.tuples[0];
  StageAccountant acct(ctx.cluster, ctx.stats, "mm:bcast-single*strips");
  acct.Broadcast(ta.worker, ta.Bytes(sparse_lhs));
  double out_tuple_bytes = OutTupleBytes(ctx);
  for (const EngineTuple& t : b.tuples) {
    double flops = 2.0 * static_cast<double>(ta.rows) *
                   static_cast<double>(ta.cols) * static_cast<double>(t.cols) *
                   (sparse_lhs ? ta.sparsity : 1.0);
    ChargeCompute(ctx, acct, t.worker, flops,
                  ta.Bytes(sparse_lhs) + t.Bytes(false) + out_tuple_bytes);
    acct.PeakWorkerMem(t.worker, t.Bytes(false) + out_tuple_bytes);
    acct.AddDisk(t.worker, out_tuple_bytes);
  }
  acct.AddTuples(2.0 * b.tuples.size() + ctx.workers());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    std::vector<DenseMatrix> outs(b.tuples.size());
    ParallelTuples(b.tuples.size(), [&](int64_t i) {
      const EngineTuple& t = b.tuples[i];
      outs[i] = sparse_lhs ? SpMm(*ta.sparse, *t.dense)
                           : Gemm(*ta.dense, *t.dense);
    });
    for (size_t i = 0; i < b.tuples.size(); ++i) {
      payloads.emplace(Key(0, b.tuples[i].c), std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

/// row-strips x col-strips cross join -> tiles, no aggregation.
Result<Relation> ExecMmCrossStrips(const Ctx& ctx, const Relation& a,
                                   const Relation& b) {
  bool bcast_a = a.TotalBytes() <= b.TotalBytes();
  const Relation& small = bcast_a ? a : b;
  StageAccountant acct(ctx.cluster, ctx.stats, "mm:cross-strips");
  for (const EngineTuple& t : small.tuples) {
    acct.Broadcast(t.worker, t.Bytes(false));
  }
  double out_tuple_bytes = OutTupleBytes(ctx);
  for (const EngineTuple& ta : a.tuples) {
    for (const EngineTuple& tb : b.tuples) {
      double flops = 2.0 * static_cast<double>(ta.rows) *
                     static_cast<double>(ta.cols) *
                     static_cast<double>(tb.cols);
      int compute_worker = bcast_a ? tb.worker : ta.worker;
      acct.AddFlops(compute_worker, flops);
      acct.PeakWorkerMem(compute_worker, ta.Bytes(false) + tb.Bytes(false) +
                                             out_tuple_bytes);
      int out_worker = WorkerFor(ta.r, tb.c, ctx.workers());
      if (out_worker != compute_worker) {
        acct.AddNet(compute_worker, out_tuple_bytes);
      }
      acct.AddDisk(out_worker, out_tuple_bytes);
    }
  }
  acct.AddTuples(static_cast<double>(a.tuples.size()) + b.tuples.size() +
                 static_cast<double>(a.tuples.size()) * b.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    const int64_t nb = static_cast<int64_t>(b.tuples.size());
    std::vector<DenseMatrix> outs(a.tuples.size() * b.tuples.size());
    ParallelTuples(outs.size(), [&](int64_t i) {
      outs[i] = Gemm(*a.tuples[i / nb].dense, *b.tuples[i % nb].dense);
    });
    for (size_t i = 0; i < outs.size(); ++i) {
      payloads.emplace(Key(a.tuples[i / nb].r, b.tuples[i % nb].c),
                       std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

/// tiles x tiles shuffle join + group-by SUM; `bcast` selects the
/// broadcast variants (0 = plain shuffle, 1 = broadcast lhs, 2 = rhs).
Result<Relation> ExecMmTiles(const Ctx& ctx, const Relation& a,
                             const Relation& b, int bcast) {
  const Format& fa = FormatOf(a.format);
  const Format& fb = FormatOf(b.format);
  int64_t nr = NumChunks(a.type.rows(), fa.p1);
  int64_t nk = NumChunks(a.type.cols(), fa.p2);
  int64_t nc = NumChunks(b.type.cols(), fb.p2);
  double out_tuple_bytes = OutTupleBytes(ctx);

  StageAccountant join(ctx.cluster, ctx.stats,
                       bcast == 0 ? "mm:tiles-shuffle-join"
                                  : "mm:tiles-bcast-join");
  if (bcast == 0) {
    // Re-partition both inputs by the inner chunk index.
    for (const EngineTuple& t : a.tuples) AccountRepartition(join, t);
    for (const EngineTuple& t : b.tuples) AccountRepartition(join, t);
  } else {
    const Relation& small = bcast == 1 ? a : b;
    for (const EngineTuple& t : small.tuples) {
      join.Broadcast(t.worker, t.Bytes(false));
    }
  }

  // Partial products. With a shuffle join the partials are materialized
  // and shuffled to the group-by workers (SimSQL behaviour: this is the
  // intermediate-data blow-up that crashes over-tiled plans); with a
  // broadcast join they fold into a per-worker pre-aggregate.
  double partial_flops_per_entry = 2.0 * static_cast<double>(fa.p2);
  double partials = static_cast<double>(nr) * nk * nc;
  for (int64_t i = 0; i < nr; ++i) {
    for (int64_t k = 0; k < nk; ++k) {
      for (int64_t j = 0; j < nc; ++j) {
        // Plain shuffle joins co-locate on the inner chunk index; the
        // broadcast variants compute at the large side's tuple homes.
        int join_worker = bcast == 0 ? WorkerFor(0, k, ctx.workers())
                          : bcast == 1
                              ? WorkerFor(k, j, ctx.workers())  // rhs home
                              : WorkerFor(i, k, ctx.workers());  // lhs home
        double flops = partial_flops_per_entry * out_tuple_bytes / 8.0;
        join.AddFlops(join_worker, flops);
        join.PeakWorkerMem(join_worker,
                           8.0 * static_cast<double>(fa.p1) * fa.p2 +
                               8.0 * static_cast<double>(fb.p1) * fb.p2 +
                               out_tuple_bytes);
        int out_worker = WorkerFor(i, j, ctx.workers());
        if (bcast == 0) {
          join.AddNet(join_worker, out_tuple_bytes);
          join.AddDisk(out_worker, out_tuple_bytes);  // materialized partial
          join.AddWorkerSpill(out_worker, out_tuple_bytes);
        }
      }
    }
  }
  join.AddTuples(static_cast<double>(a.tuples.size()) + b.tuples.size() +
                 (bcast == 0 ? partials : 0.0));
  MATOPT_RETURN_IF_ERROR(join.Commit());

  StageAccountant agg(ctx.cluster, ctx.stats, "mm:tiles-agg");
  for (int64_t i = 0; i < nr; ++i) {
    for (int64_t j = 0; j < nc; ++j) {
      int out_worker = WorkerFor(i, j, ctx.workers());
      agg.AddFlops(out_worker, static_cast<double>(nk) * out_tuple_bytes / 8.0);
      agg.AddWorkerMem(out_worker, 2.0 * out_tuple_bytes);
      agg.AddDisk(out_worker, out_tuple_bytes);
      if (bcast != 0) {
        // Pre-aggregated partials still shuffle once per contributing
        // worker (bounded by nk and the cluster size).
        double contributions =
            std::min<double>(static_cast<double>(nk), ctx.workers());
        agg.AddNet(out_worker, contributions * out_tuple_bytes);
      }
    }
  }
  agg.AddTuples(static_cast<double>(nr) * nc +
                (bcast == 0 ? partials : 0.0));
  MATOPT_RETURN_IF_ERROR(agg.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    TupleMap ma = MapTuples(a);
    TupleMap mb = MapTuples(b);
    // One task per output tile (i, j); the k accumulation inside a tile
    // keeps its sequential order, so results match sequential runs bit
    // for bit.
    std::vector<DenseMatrix> outs(nr * nc);
    ParallelTuples(nr * nc, [&](int64_t idx) {
      const int64_t i = idx / nc;
      const int64_t j = idx % nc;
      DenseMatrix sum;
      for (int64_t k = 0; k < nk; ++k) {
        const EngineTuple* ta = ma.at(Key(i, k));
        const EngineTuple* tb = mb.at(Key(k, j));
        if (sum.size() == 0) {
          sum = DenseMatrix::Pooled(ta->rows, tb->cols);
        }
        GemmAccumulate(*ta->dense, *tb->dense, &sum);
      }
      outs[idx] = std::move(sum);
    });
    for (int64_t i = 0; i < nr; ++i) {
      for (int64_t j = 0; j < nc; ++j) {
        payloads.emplace(Key(i, j), std::move(outs[i * nc + j]));
      }
    }
  }
  return FinishOutput(ctx, &payloads);
}

/// col-strips x row-strips joined on the strip index; every pair yields a
/// full-size outer product that is SUM-aggregated into a single tuple.
Result<Relation> ExecMmOuterSum(const Ctx& ctx, const Relation& a,
                                const Relation& b) {
  double out_bytes = TotalOutBytes(ctx);
  int owner = WorkerFor(0, 0, ctx.workers());

  StageAccountant join(ctx.cluster, ctx.stats, "mm:outer-join");
  for (const EngineTuple& t : a.tuples) join.AddNet(t.worker, t.Bytes(false));
  for (const EngineTuple& t : b.tuples) join.AddNet(t.worker, t.Bytes(false));
  for (const EngineTuple& t : a.tuples) {
    int worker_k = WorkerFor(t.c, t.c, ctx.workers());
    double flops = 2.0 * static_cast<double>(a.type.rows()) *
                   static_cast<double>(t.cols) *
                   static_cast<double>(b.type.cols());
    join.AddFlops(worker_k, flops);
    join.PeakWorkerMem(worker_k, 2.0 * t.Bytes(false) + out_bytes);
    join.AddNet(worker_k, out_bytes);  // ship the partial to the aggregator
    join.AddDisk(owner, out_bytes);    // materialized at the aggregator
    join.AddWorkerSpill(owner, out_bytes);
  }
  join.AddTuples(static_cast<double>(a.tuples.size()) + b.tuples.size() +
                 a.tuples.size());
  MATOPT_RETURN_IF_ERROR(join.Commit());

  StageAccountant agg(ctx.cluster, ctx.stats, "mm:outer-agg");
  agg.AddFlops(owner, static_cast<double>(a.tuples.size()) * out_bytes / 8.0);
  agg.AddWorkerMem(owner, 2.0 * out_bytes);
  agg.AddDisk(owner, out_bytes);
  agg.AddTuples(1);
  MATOPT_RETURN_IF_ERROR(agg.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    TupleMap mb = MapTuples(b);
    DenseMatrix sum = DenseMatrix::Pooled(a.type.rows(), b.type.cols());
    for (const EngineTuple& ta : a.tuples) {
      const EngineTuple* tb = mb.at(Key(ta.c, 0));
      GemmAccumulate(*ta.dense, *tb->dense, &sum);
    }
    payloads.emplace(Key(0, 0), std::move(sum));
  }
  return FinishOutput(ctx, &payloads);
}

/// row-strips x broadcast whole col-striped rhs -> row strips.
Result<Relation> ExecMmStripsBcastColStrips(const Ctx& ctx, const Relation& a,
                                            const Relation& b) {
  StageAccountant acct(ctx.cluster, ctx.stats, "mm:strips*bcast-colstrips");
  for (const EngineTuple& t : b.tuples) acct.Broadcast(t.worker, t.Bytes(false));
  double out_tuple_bytes = OutTupleBytes(ctx);
  for (const EngineTuple& t : a.tuples) {
    double flops = 2.0 * static_cast<double>(t.rows) *
                   static_cast<double>(t.cols) *
                   static_cast<double>(b.type.cols());
    acct.AddFlops(t.worker, flops);
    acct.PeakWorkerMem(t.worker, t.Bytes(false) + out_tuple_bytes);
    acct.AddDisk(t.worker, out_tuple_bytes);
  }
  acct.AddTuples(2.0 * a.tuples.size() +
                 static_cast<double>(b.tuples.size()) * ctx.workers());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  // Zero-copy: each (strip, block) product accumulates directly into a
  // view of the output strip; the copy path materializes each block and
  // SetBlock-copies it in. Tallied sequentially (dry-run and data alike).
  const bool zc = ctx.opts.zero_copy;
  for (const EngineTuple& ta : a.tuples) {
    for (const EngineTuple& tb : b.tuples) {
      double block_bytes = 8.0 * static_cast<double>(ta.rows) * tb.cols;
      if (zc) {
        ctx.mem()->bytes_moved += block_bytes;
        ++ctx.mem()->allocs_avoided;
      } else {
        ctx.mem()->bytes_copied += block_bytes;
      }
    }
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    ChunkDims bd = ChunkDimsFor(b.type, FormatOf(b.format));
    std::vector<DenseMatrix> outs(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      const EngineTuple& ta = a.tuples[i];
      if (zc) {
        DenseMatrix out_strip = DenseMatrix::Pooled(ta.rows, b.type.cols());
        for (const EngineTuple& tb : b.tuples) {
          GemmAccumulate(*ta.dense, *tb.dense,
                         out_strip.MutableBlock(0, tb.c * bd.cols, ta.rows,
                                                tb.cols));
        }
        outs[i] = std::move(out_strip);
      } else {
        DenseMatrix out_strip(ta.rows, b.type.cols());
        for (const EngineTuple& tb : b.tuples) {
          out_strip.SetBlock(0, tb.c * bd.cols, Gemm(*ta.dense, *tb.dense));
        }
        outs[i] = std::move(out_strip);
      }
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      payloads.emplace(Key(a.tuples[i].r, 0), std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

/// sparse CSR row strips x dense tiles -> dense row strips (shuffle+agg).
Result<Relation> ExecMmSpStripsTiles(const Ctx& ctx, const Relation& a,
                                     const Relation& b) {
  const Format& fb = FormatOf(b.format);
  int64_t nk = NumChunks(b.type.rows(), fb.p1);
  int64_t nc = NumChunks(b.type.cols(), fb.p2);
  double out_tuple_bytes = OutTupleBytes(ctx);
  double partial_bytes =
      out_tuple_bytes / std::max<int64_t>(1, nc);  // one (i,k,j) block

  StageAccountant join(ctx.cluster, ctx.stats, "mm:sp-strips*tiles-join");
  for (const EngineTuple& t : a.tuples) join.Broadcast(t.worker, t.Bytes(true));
  for (const EngineTuple& ta : a.tuples) {
    for (const EngineTuple& tb : b.tuples) {
      join.PeakWorkerMem(tb.worker, tb.Bytes(false) + partial_bytes);
      double flops = 2.0 * ta.sparsity * static_cast<double>(ta.rows) *
                     static_cast<double>(tb.rows) *
                     static_cast<double>(tb.cols);
      join.AddFlops(tb.worker, flops);
      int out_worker = WorkerFor(ta.r, 0, ctx.workers());
      join.AddNet(tb.worker, partial_bytes);
      join.AddDisk(out_worker, partial_bytes);
      join.AddWorkerSpill(out_worker, partial_bytes);
    }
  }
  join.AddTuples(static_cast<double>(a.tuples.size()) + b.tuples.size() +
                 static_cast<double>(a.tuples.size()) * b.tuples.size());
  MATOPT_RETURN_IF_ERROR(join.Commit());

  StageAccountant agg(ctx.cluster, ctx.stats, "mm:sp-strips*tiles-agg");
  for (const EngineTuple& ta : a.tuples) {
    int out_worker = WorkerFor(ta.r, 0, ctx.workers());
    agg.AddFlops(out_worker, static_cast<double>(nk) * out_tuple_bytes / 8.0);
    agg.AddWorkerMem(out_worker, 2.0 * out_tuple_bytes);
    agg.AddDisk(out_worker, out_tuple_bytes);
  }
  agg.AddTuples(static_cast<double>(a.tuples.size()));
  MATOPT_RETURN_IF_ERROR(agg.Commit());

  // Zero-copy: accumulate each sparse-slice product straight into a view
  // of the output strip (the copy path extracts the block, accumulates,
  // and SetBlock-copies it back: two block copies per pair). Tallied
  // sequentially (dry-run and data alike).
  const bool zc = ctx.opts.zero_copy;
  for (const EngineTuple& ta : a.tuples) {
    for (const EngineTuple& tb : b.tuples) {
      double block_bytes = 8.0 * static_cast<double>(ta.rows) * tb.cols;
      if (zc) {
        ctx.mem()->bytes_moved += 2.0 * block_bytes;
        ++ctx.mem()->allocs_avoided;
      } else {
        ctx.mem()->bytes_copied += 2.0 * block_bytes;
      }
    }
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    ChunkDims bd = ChunkDimsFor(b.type, FormatOf(b.format));
    std::vector<DenseMatrix> outs(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      const EngineTuple& ta = a.tuples[i];
      if (zc) {
        DenseMatrix out_strip = DenseMatrix::Pooled(ta.rows, b.type.cols());
        for (const EngineTuple& tb : b.tuples) {
          SparseMatrix slice = ta.sparse->ColSlice(tb.r * bd.rows, tb.rows);
          SpMmAccumulate(slice, *tb.dense,
                         out_strip.MutableBlock(0, tb.c * bd.cols, ta.rows,
                                                tb.cols));
          slice.Recycle();
        }
        outs[i] = std::move(out_strip);
      } else {
        DenseMatrix out_strip(ta.rows, b.type.cols());
        for (const EngineTuple& tb : b.tuples) {
          SparseMatrix slice = ta.sparse->ColSlice(tb.r * bd.rows, tb.rows);
          DenseMatrix block = out_strip.Block(0, tb.c * bd.cols, ta.rows,
                                              tb.cols);
          SpMmAccumulate(slice, *tb.dense, &block);
          out_strip.SetBlock(0, tb.c * bd.cols, block);
        }
        outs[i] = std::move(out_strip);
      }
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      payloads.emplace(Key(a.tuples[i].r, 0), std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

// ---------------------------------------------------------------------
// Element-wise, map, reduction, and inverse implementations.

Result<Relation> ExecZip(const Ctx& ctx, ImplKind kind, const ExecInput& a_in,
                         const ExecInput& b_in) {
  const Relation& a = *a_in.rel;
  const Relation& b = *b_in.rel;
  StageAccountant acct(ctx.cluster, ctx.stats, "zip");
  for (const EngineTuple& t : a.tuples) {
    double entries = static_cast<double>(t.rows) * t.cols;
    acct.AddFlops(t.worker,
                  kind == ImplKind::kReluGradZip ? 2.0 * entries : entries);
    acct.PeakWorkerMem(t.worker, 3.0 * t.Bytes(false));
    acct.AddDisk(t.worker, t.Bytes(false));
  }
  acct.AddTuples(3.0 * a.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  switch (kind) {
    case ImplKind::kAddZip:
    case ImplKind::kSubZip:
    case ImplKind::kHadamardZip:
    case ImplKind::kElemDivZip:
    case ImplKind::kReluGradZip:
      break;
    default: return Status::Internal("not a zip implementation");
  }

  // This vertex is a fused-group member: its value was applied in place
  // at the group base. Accounting above stays, payloads transfer through.
  if (ctx.opts.passthrough_arg >= 0) {
    return FinishPassthrough(ctx, ctx.opts.passthrough_arg == 0 ? a : b);
  }

  const size_t n = a.tuples.size();

  // Steal/reuse decisions on the coordinating thread, before any parallel
  // work (both for thread safety and so the tallies are deterministic).
  std::vector<std::shared_ptr<DenseMatrix>> stolen(n);
  for (size_t i = 0; i < n; ++i) {
    bool in_place = StealDecision(ctx, a_in, i);
    if (in_place && ctx.data) stolen[i] = StealPayload(a_in, i);
    CountElemOutput(ctx, a.tuples[i], in_place);
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    TupleMap mb = MapTuples(b);
    std::vector<DenseMatrix> outs(n);
    ParallelTuples(n, [&](int64_t i) {
      const EngineTuple& ta = a.tuples[i];
      const DenseMatrix& da = *ta.dense;
      const DenseMatrix& db = *mb.at(Key(ta.r, ta.c))->dense;
      DenseMatrix* dst = stolen[i] ? stolen[i].get() : nullptr;
      switch (kind) {
        case ImplKind::kAddZip:
          dst ? AddInto(da, db, dst) : void(outs[i] = Add(da, db));
          break;
        case ImplKind::kSubZip:
          dst ? SubInto(da, db, dst) : void(outs[i] = Sub(da, db));
          break;
        case ImplKind::kHadamardZip:
          dst ? HadamardInto(da, db, dst) : void(outs[i] = Hadamard(da, db));
          break;
        case ImplKind::kElemDivZip:
          dst ? ElemDivInto(da, db, dst) : void(outs[i] = ElemDiv(da, db));
          break;
        default:
          dst ? ReluGradInto(da, db, dst) : void(outs[i] = ReluGrad(da, db));
          break;
      }
    });
    for (size_t i = 0; i < n; ++i) {
      DenseMatrix& out = stolen[i] ? *stolen[i] : outs[i];
      payloads.emplace(Key(a.tuples[i].r, a.tuples[i].c), std::move(out));
    }
  }
  return FinishOutput(ctx, &payloads);
}

Result<Relation> ExecSparseAdd(const Ctx& ctx, const Relation& a,
                               const Relation& b) {
  StageAccountant acct(ctx.cluster, ctx.stats, "zip:sparse-add");
  for (const EngineTuple& t : a.tuples) {
    double entries = static_cast<double>(t.rows) * t.cols;
    acct.AddFlops(t.worker, entries * (t.sparsity + b.sparsity));
    acct.PeakWorkerMem(t.worker, 3.0 * t.Bytes(true));
    acct.AddDisk(t.worker, t.Bytes(true));
  }
  acct.AddTuples(3.0 * a.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, SparseMatrix> payloads;
  if (ctx.data) {
    TupleMap mb = MapTuples(b);
    std::vector<SparseMatrix> outs(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      const EngineTuple& ta = a.tuples[i];
      const EngineTuple* tb = mb.at(Key(ta.r, ta.c));
      outs[i] = SpAdd(*ta.sparse, *tb->sparse);
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      payloads.emplace(Key(a.tuples[i].r, a.tuples[i].c), std::move(outs[i]));
    }
  }
  return FinishSparseOutput(ctx, &payloads);
}

Result<Relation> ExecMap(const Ctx& ctx, ImplKind kind, const ExecInput& a_in) {
  const Relation& a = *a_in.rel;
  bool sparse = FormatOf(a.format).sparse();
  StageAccountant acct(ctx.cluster, ctx.stats, "map");
  for (const EngineTuple& t : a.tuples) {
    double entries = static_cast<double>(t.rows) * t.cols *
                     (sparse ? t.sparsity : 1.0);
    double per_entry = (kind == ImplKind::kSigmoidMap ||
                        kind == ImplKind::kExpMap ||
                        kind == ImplKind::kSoftmaxRowStrips ||
                        kind == ImplKind::kSoftmaxSingle)
                           ? 4.0
                           : 1.0;
    acct.AddFlops(t.worker, per_entry * entries);
    acct.PeakWorkerMem(t.worker, 2.0 * t.Bytes(sparse));
    acct.AddDisk(t.worker, t.Bytes(sparse));
  }
  acct.AddTuples(2.0 * a.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  if (sparse) {
    std::unordered_map<uint64_t, SparseMatrix> payloads;
    if (ctx.data) {
      for (const EngineTuple& t : a.tuples) {
        payloads.emplace(Key(t.r, t.c), t.sparse->Scaled(ctx.vertex.scalar));
      }
    }
    return FinishSparseOutput(ctx, &payloads);
  }
  switch (kind) {
    case ImplKind::kScalarMulMap:
    case ImplKind::kReluMap:
    case ImplKind::kSigmoidMap:
    case ImplKind::kExpMap:
    case ImplKind::kSoftmaxRowStrips:
    case ImplKind::kSoftmaxSingle:
      break;
    default: return Status::Internal("not a map implementation");
  }

  // This vertex is a fused-group member (e.g. Relu applied in place
  // after a matmul base): accounting above stays, payloads transfer
  // through.
  if (ctx.opts.passthrough_arg >= 0) return FinishPassthrough(ctx, a);

  const size_t n = a.tuples.size();
  std::vector<std::shared_ptr<DenseMatrix>> stolen(n);
  for (size_t i = 0; i < n; ++i) {
    bool in_place = StealDecision(ctx, a_in, i);
    if (in_place && ctx.data) stolen[i] = StealPayload(a_in, i);
    CountElemOutput(ctx, a.tuples[i], in_place);
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    const double s = ctx.vertex.scalar;
    std::vector<DenseMatrix> outs(n);
    ParallelTuples(n, [&](int64_t i) {
      const DenseMatrix& da = *a.tuples[i].dense;
      DenseMatrix* dst = stolen[i] ? stolen[i].get() : nullptr;
      switch (kind) {
        case ImplKind::kScalarMulMap:
          dst ? ScalarMulInto(da, s, dst) : void(outs[i] = ScalarMul(da, s));
          break;
        case ImplKind::kReluMap:
          dst ? ReluInto(da, dst) : void(outs[i] = Relu(da));
          break;
        case ImplKind::kSigmoidMap:
          dst ? SigmoidInto(da, dst) : void(outs[i] = Sigmoid(da));
          break;
        case ImplKind::kExpMap:
          dst ? ExpInto(da, dst) : void(outs[i] = Exp(da));
          break;
        default:
          dst ? SoftmaxInto(da, dst) : void(outs[i] = Softmax(da));
          break;
      }
    });
    for (size_t i = 0; i < n; ++i) {
      DenseMatrix& out = stolen[i] ? *stolen[i] : outs[i];
      payloads.emplace(Key(a.tuples[i].r, a.tuples[i].c), std::move(out));
    }
  }
  return FinishOutput(ctx, &payloads);
}

Result<Relation> ExecTranspose(const Ctx& ctx, ImplKind kind,
                               const Relation& a) {
  StageAccountant acct(ctx.cluster, ctx.stats, "transpose");
  for (const EngineTuple& t : a.tuples) {
    acct.AddFlops(t.worker, static_cast<double>(t.rows) * t.cols);
    acct.PeakWorkerMem(t.worker, 2.0 * t.Bytes(false));
    acct.AddDisk(t.worker, t.Bytes(false));
    // Swapping the chunk key usually moves the tuple to another worker.
    int64_t out_r = t.c;
    int64_t out_c = t.r;
    if (kind == ImplKind::kTransposeRowToCol) {
      out_r = 0;
      out_c = t.r;
    } else if (kind == ImplKind::kTransposeColToRow) {
      out_r = t.c;
      out_c = 0;
    }
    int out_worker = WorkerFor(out_r, out_c, ctx.workers());
    if (out_worker != t.worker) acct.AddNet(t.worker, t.Bytes(false));
  }
  acct.AddTuples(2.0 * a.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    std::vector<DenseMatrix> outs(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      outs[i] = Transpose(*a.tuples[i].dense);
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      const EngineTuple& t = a.tuples[i];
      int64_t out_r = t.c;
      int64_t out_c = t.r;
      if (kind == ImplKind::kTransposeRowToCol) {
        out_r = 0;
        out_c = t.r;
      } else if (kind == ImplKind::kTransposeColToRow) {
        out_r = t.c;
        out_c = 0;
      } else if (kind == ImplKind::kTransposeSingle) {
        out_r = 0;
        out_c = 0;
      }
      payloads.emplace(Key(out_r, out_c), std::move(outs[i]));
    }
  }
  return FinishOutput(ctx, &payloads);
}

Result<Relation> ExecReduce(const Ctx& ctx, ImplKind kind, const Relation& a) {
  bool row = (kind == ImplKind::kRowSumRowStrips ||
              kind == ImplKind::kRowSumTilesAgg ||
              kind == ImplKind::kRowSumSingle);
  bool agg = (kind == ImplKind::kRowSumTilesAgg ||
              kind == ImplKind::kColSumTilesAgg);
  StageAccountant acct(ctx.cluster, ctx.stats, row ? "row_sum" : "col_sum");
  double out_tuple_bytes = OutTupleBytes(ctx);
  for (const EngineTuple& t : a.tuples) {
    acct.AddFlops(t.worker, static_cast<double>(t.rows) * t.cols);
    acct.PeakWorkerMem(t.worker, t.Bytes(false) + out_tuple_bytes);
    if (agg) acct.AddNet(t.worker, out_tuple_bytes);  // partial vectors
  }
  acct.AddTuples(2.0 * a.tuples.size());
  MATOPT_RETURN_IF_ERROR(acct.Commit());
  if (agg) {
    StageAccountant agg_acct(ctx.cluster, ctx.stats, "sum-agg");
    for (const EngineTuple& t : a.tuples) {
      int64_t group = row ? t.r : t.c;
      int w = row ? WorkerFor(group, 0, ctx.workers())
                  : WorkerFor(0, group, ctx.workers());
      agg_acct.AddFlops(w, out_tuple_bytes / 8.0);
      agg_acct.AddWorkerMem(w, 2.0 * out_tuple_bytes);
    }
    agg_acct.AddTuples(static_cast<double>(a.tuples.size()));
    MATOPT_RETURN_IF_ERROR(agg_acct.Commit());
  }

  // Merge accounting is derived from the key collisions alone, so it is
  // identical in dry-run and data mode: each repeated group key costs one
  // partial-vector merge (in place when zero-copy, a fresh sum otherwise).
  const bool zc = ctx.opts.zero_copy;
  {
    std::unordered_set<uint64_t> seen;
    for (const EngineTuple& t : a.tuples) {
      uint64_t key = row ? Key(t.r, 0) : Key(0, t.c);
      if (!seen.insert(key).second) {
        if (zc) {
          ctx.mem()->bytes_moved += out_tuple_bytes;
          ++ctx.mem()->inplace_kernels;
          ++ctx.mem()->allocs_avoided;
        } else {
          ctx.mem()->bytes_copied += out_tuple_bytes;
        }
      }
    }
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    // Per-tuple partial sums in parallel; the cross-tuple aggregation
    // merges them sequentially in tuple order (same order as before).
    std::vector<DenseMatrix> parts(a.tuples.size());
    ParallelTuples(a.tuples.size(), [&](int64_t i) {
      parts[i] = row ? RowSum(*a.tuples[i].dense) : ColSum(*a.tuples[i].dense);
    });
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      const EngineTuple& t = a.tuples[i];
      uint64_t key = row ? Key(t.r, 0) : Key(0, t.c);
      auto it = payloads.find(key);
      if (it == payloads.end()) {
        payloads.emplace(key, std::move(parts[i]));
      } else if (zc) {
        AddInto(it->second, parts[i], &it->second);
        parts[i].Recycle();
      } else {
        it->second = Add(it->second, parts[i]);
      }
    }
  }
  return FinishOutput(ctx, &payloads);
}

Result<Relation> ExecBroadcastRowAdd(const Ctx& ctx, const ExecInput& a_in,
                                     const ExecInput& b_in) {
  const Relation& a = *a_in.rel;
  const Relation& b = *b_in.rel;
  const EngineTuple& vec = b.tuples[0];
  StageAccountant acct(ctx.cluster, ctx.stats, "broadcast_row_add");
  acct.Broadcast(vec.worker, vec.Bytes(false));
  for (const EngineTuple& t : a.tuples) {
    acct.AddFlops(t.worker, static_cast<double>(t.rows) * t.cols);
    acct.PeakWorkerMem(t.worker, 2.0 * t.Bytes(false));
    acct.AddDisk(t.worker, t.Bytes(false));
  }
  acct.AddTuples(2.0 * a.tuples.size() + ctx.workers());
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  // This vertex is a fused-group member (the bias add ran in place at
  // the group base): accounting above stays, payloads transfer through.
  if (ctx.opts.passthrough_arg >= 0) return FinishPassthrough(ctx, a);

  const size_t n = a.tuples.size();
  std::vector<std::shared_ptr<DenseMatrix>> stolen(n);
  for (size_t i = 0; i < n; ++i) {
    bool in_place = StealDecision(ctx, a_in, i);
    if (in_place && ctx.data) stolen[i] = StealPayload(a_in, i);
    CountElemOutput(ctx, a.tuples[i], in_place);
  }

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    ChunkDims ad = ChunkDimsFor(a.type, FormatOf(a.format));
    std::vector<DenseMatrix> outs(n);
    ParallelTuples(n, [&](int64_t i) {
      const EngineTuple& t = a.tuples[i];
      DenseMatrix slice = vec.dense->Block(0, t.c * ad.cols, 1, t.cols);
      DenseMatrix* dst = stolen[i] ? stolen[i].get() : nullptr;
      dst ? BroadcastRowAddInto(*t.dense, slice, dst)
          : void(outs[i] = BroadcastRowAdd(*t.dense, slice));
    });
    for (size_t i = 0; i < n; ++i) {
      DenseMatrix& out = stolen[i] ? *stolen[i] : outs[i];
      payloads.emplace(Key(a.tuples[i].r, a.tuples[i].c), std::move(out));
    }
  }
  return FinishOutput(ctx, &payloads);
}

Result<Relation> ExecInverse(const Ctx& ctx, ImplKind kind,
                             const Relation& a) {
  int owner = a.tuples.size() == 1 ? a.tuples[0].worker
                                   : WorkerFor(0, 0, ctx.workers());
  double n = static_cast<double>(a.type.rows());
  StageAccountant acct(ctx.cluster, ctx.stats, "inverse");
  if (kind == ImplKind::kInverseGatherLu) {
    for (const EngineTuple& t : a.tuples) {
      if (t.worker != owner) acct.AddNet(t.worker, t.Bytes(false));
    }
  }
  ChargeCompute(ctx, acct, owner, 2.0 * n * n * n,
                2.0 * a.type.DenseBytes());
  acct.AddWorkerMem(owner, 2.0 * a.type.DenseBytes());
  acct.AddDisk(owner, a.type.DenseBytes());
  acct.AddTuples(static_cast<double>(a.tuples.size()) + 1);
  MATOPT_RETURN_IF_ERROR(acct.Commit());

  std::unordered_map<uint64_t, DenseMatrix> payloads;
  if (ctx.data) {
    MATOPT_ASSIGN_OR_RETURN(DenseMatrix whole, MaterializeDense(a));
    MATOPT_ASSIGN_OR_RETURN(DenseMatrix inv, Inverse(whole));
    payloads.emplace(Key(0, 0), std::move(inv));
  }
  return FinishOutput(ctx, &payloads);
}

}  // namespace

Result<Relation> ExecuteImpl(const Catalog& catalog, ImplKind kind,
                             FormatId out_format,
                             const std::vector<const Relation*>& args,
                             const Vertex& vertex,
                             const ClusterConfig& cluster, ExecStats* stats) {
  std::vector<ExecInput> inputs(args.size());
  for (size_t i = 0; i < args.size(); ++i) inputs[i].rel = args[i];
  return ExecuteImpl(catalog, kind, out_format, inputs, vertex, cluster,
                     stats, ExecOptions{});
}

Result<Relation> ExecuteImpl(const Catalog& catalog, ImplKind kind,
                             FormatId out_format,
                             const std::vector<ExecInput>& args,
                             const Vertex& vertex,
                             const ClusterConfig& cluster, ExecStats* stats,
                             const ExecOptions& options) {
  (void)catalog;
  bool data = true;
  for (const ExecInput& in : args) data = data && in.rel->has_data;
  Ctx ctx{cluster, stats, vertex, out_format, data};
  ctx.opts = options;
  switch (kind) {
    case ImplKind::kGpuMmSingleSingle:
      ctx.gpu = true;
      return ExecMmLocalSingle(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kGpuMmRowStripsXBcastSingle:
      ctx.gpu = true;
      return ExecMmStripsBcastSingle(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kGpuMmBcastSingleXColStrips:
      ctx.gpu = true;
      return ExecMmBcastSingleStrips(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kGpuInverseSingleLu:
      ctx.gpu = true;
      return ExecInverse(ctx, ImplKind::kInverseSingleLu, *args[0].rel);
    case ImplKind::kMmSingleSingle:
      return ExecMmLocalSingle(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kMmSpSingleXSingle:
      return ExecMmLocalSingle(ctx, *args[0].rel, *args[1].rel, true);
    case ImplKind::kMmRowStripsXBcastSingle:
      return ExecMmStripsBcastSingle(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kMmSpRowStripsXBcastSingle:
      return ExecMmStripsBcastSingle(ctx, *args[0].rel, *args[1].rel, true);
    case ImplKind::kMmBcastSingleXColStrips:
      return ExecMmBcastSingleStrips(ctx, *args[0].rel, *args[1].rel, false);
    case ImplKind::kMmSpSingleXColStrips:
      return ExecMmBcastSingleStrips(ctx, *args[0].rel, *args[1].rel, true);
    case ImplKind::kMmCrossStrips:
      return ExecMmCrossStrips(ctx, *args[0].rel, *args[1].rel);
    case ImplKind::kMmTilesShuffle:
      return ExecMmTiles(ctx, *args[0].rel, *args[1].rel, 0);
    case ImplKind::kMmBcastTilesXTiles:
      return ExecMmTiles(ctx, *args[0].rel, *args[1].rel, 1);
    case ImplKind::kMmTilesXBcastTiles:
      return ExecMmTiles(ctx, *args[0].rel, *args[1].rel, 2);
    case ImplKind::kMmColStripsXRowStripsOuterSum:
      return ExecMmOuterSum(ctx, *args[0].rel, *args[1].rel);
    case ImplKind::kMmRowStripsXBcastColStrips:
      return ExecMmStripsBcastColStrips(ctx, *args[0].rel, *args[1].rel);
    case ImplKind::kMmSpRowStripsXTiles:
      return ExecMmSpStripsTiles(ctx, *args[0].rel, *args[1].rel);
    case ImplKind::kAddZip:
    case ImplKind::kSubZip:
    case ImplKind::kHadamardZip:
    case ImplKind::kElemDivZip:
    case ImplKind::kReluGradZip:
      return ExecZip(ctx, kind, args[0], args[1]);
    case ImplKind::kAddSparseZip:
      return ExecSparseAdd(ctx, *args[0].rel, *args[1].rel);
    case ImplKind::kScalarMulMap:
    case ImplKind::kReluMap:
    case ImplKind::kSigmoidMap:
    case ImplKind::kExpMap:
    case ImplKind::kSoftmaxRowStrips:
    case ImplKind::kSoftmaxSingle:
      return ExecMap(ctx, kind, args[0]);
    case ImplKind::kTransposeSingle:
    case ImplKind::kTransposeRowToCol:
    case ImplKind::kTransposeColToRow:
    case ImplKind::kTransposeTiles:
      return ExecTranspose(ctx, kind, *args[0].rel);
    case ImplKind::kRowSumRowStrips:
    case ImplKind::kRowSumTilesAgg:
    case ImplKind::kRowSumSingle:
    case ImplKind::kColSumColStrips:
    case ImplKind::kColSumTilesAgg:
    case ImplKind::kColSumSingle:
      return ExecReduce(ctx, kind, *args[0].rel);
    case ImplKind::kBroadcastRowAddBcastVec:
      return ExecBroadcastRowAdd(ctx, args[0], args[1]);
    case ImplKind::kInverseSingleLu:
    case ImplKind::kInverseGatherLu:
      return ExecInverse(ctx, kind, *args[0].rel);
  }
  return Status::Internal("unknown implementation kind");
}

namespace {

/// Returns a dead relation's payload buffers to the pool. Only buffers the
/// relation exclusively owns are recycled; anything still shared (a
/// passthrough output, a caller-held input, a stolen-and-emptied payload's
/// sibling) is left to its other owners.
void RecycleRelation(Relation* rel) {
  for (EngineTuple& t : rel->tuples) {
    if (t.dense != nullptr && t.dense.use_count() == 1) {
      std::const_pointer_cast<DenseMatrix>(t.dense)->Recycle();
    }
    t.dense.reset();
    if (t.sparse != nullptr && t.sparse.use_count() == 1) {
      std::const_pointer_cast<SparseMatrix>(t.sparse)->Recycle();
    }
    t.sparse.reset();
  }
}

/// Translates one fused-group member vertex into its la-level step
/// descriptor. The operand relation (for binary ops) is resolved by the
/// caller; kBroadcastRowAdd slices its vector operand per tuple.
FusedOp FusedOpFor(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return FusedOp::kAdd;
    case OpKind::kSub: return FusedOp::kSub;
    case OpKind::kHadamard: return FusedOp::kHadamard;
    case OpKind::kElemDiv: return FusedOp::kElemDiv;
    case OpKind::kReluGrad: return FusedOp::kReluGrad;
    case OpKind::kScalarMul: return FusedOp::kScalarMul;
    case OpKind::kRelu: return FusedOp::kRelu;
    case OpKind::kSigmoid: return FusedOp::kSigmoid;
    case OpKind::kExp: return FusedOp::kExp;
    default: return FusedOp::kBiasRowAdd;  // kBroadcastRowAdd
  }
}

/// Applies a fused group's member chain in place over the base vertex's
/// freshly materialized output payloads (data mode only). The base's
/// outputs are uniquely owned make_shared buffers at this point, so the
/// const_pointer_cast is safe; each step delegates to the same *Into
/// kernels the members' unfused stages would run, in the same order, so
/// sinks stay bit-identical. Kernel roofline deltas land on the base's
/// stage record (the caller attaches them after this returns).
void ApplyFusedGroupChain(const ComputeGraph& graph, const FusedGroup& group,
                          const std::unordered_map<int, int>& acc_args,
                          const std::unordered_map<int, Relation>& live,
                          Relation* out) {
  struct MemberInfo {
    FusedOp op;
    bool acc_is_lhs = true;
    double scalar = 0.0;
    const Relation* operand = nullptr;  // null for unary maps
    TupleMap operand_tuples;            // zip operands, keyed like `out`
  };
  std::vector<MemberInfo> members;
  members.reserve(group.members.size());
  for (int m : group.members) {
    const Vertex& mx = graph.vertex(m);
    MemberInfo info;
    info.op = FusedOpFor(mx.op);
    info.scalar = mx.scalar;
    const int acc = acc_args.at(m);
    info.acc_is_lhs = acc == 0;
    for (size_t j = 0; j < mx.inputs.size(); ++j) {
      if (static_cast<int>(j) == acc) continue;
      info.operand = &live.at(mx.inputs[j]);
      if (info.op != FusedOp::kBiasRowAdd) {
        info.operand_tuples = MapTuples(*info.operand);
      }
    }
    members.push_back(std::move(info));
  }
  const ChunkDims od = ChunkDimsFor(out->type, BuiltinFormats()[out->format]);
  ParallelTuples(out->tuples.size(), [&](int64_t i) {
    EngineTuple& t = out->tuples[i];
    DenseMatrix* acc = std::const_pointer_cast<DenseMatrix>(t.dense).get();
    std::vector<FusedStep> steps(members.size());
    // Bias slices must outlive ApplyFusedChain; reserve so the operand
    // pointers stay stable as more slices are appended.
    std::vector<DenseMatrix> slices;
    slices.reserve(members.size());
    for (size_t k = 0; k < members.size(); ++k) {
      const MemberInfo& info = members[k];
      steps[k].op = info.op;
      steps[k].acc_is_lhs = info.acc_is_lhs;
      steps[k].scalar = info.scalar;
      if (info.op == FusedOp::kBiasRowAdd) {
        slices.push_back(info.operand->tuples[0].dense->Block(
            0, t.c * od.cols, 1, t.cols));
        steps[k].operand = &slices.back();
      } else if (info.operand != nullptr) {
        steps[k].operand = info.operand_tuples.at(Key(t.r, t.c))->dense.get();
      }
    }
    ApplyFusedChain(steps, acc);
  });
}

}  // namespace

bool PlanExecutor::DefaultZeroCopy() {
  const char* env = std::getenv("MATOPT_ZERO_COPY");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

bool PlanExecutor::DefaultFusion() { return FusionEnabled(); }

int PlanExecutor::DefaultDistWorkers() {
  const char* env = std::getenv("MATOPT_WORKERS");
  if (env == nullptr) return 0;
  int workers = std::atoi(env);
  return workers > 0 ? workers : 0;
}

Result<ExecResult> PlanExecutor::Execute(
    const ComputeGraph& graph, const Annotation& annotation,
    std::unordered_map<int, Relation> inputs) const {
  // Data-mode executions lower onto the sharded multi-worker runtime when
  // one is configured (DESIGN.md §12); its sim pass re-enters this
  // function with dist_workers off. Dry inputs stay on the single-node
  // path: there are no payloads to move.
  // Kernel counters are process-global, like the pool counters: the
  // whole-run delta is the roofline rollup (flop/byte tallies are
  // deterministic, seconds are observability only).
  const KernelCounters kernels_run_before = KernelCountersSnapshot();
  if (dist_workers_ > 0 && !inputs.empty()) {
    bool all_data = true;
    for (const auto& [v, rel] : inputs) all_data = all_data && rel.has_data;
    if (all_data) {
      Result<ExecResult> dist_result = dist::ExecuteDistributedPlan(
          catalog_, cluster_, graph, annotation, std::move(inputs),
          dist_workers_, transport_, zero_copy_, fusion_);
      if (dist_result.ok()) {
        dist_result.value().stats.kernels =
            KernelCountersDelta(kernels_run_before, KernelCountersSnapshot());
      }
      return dist_result;
    }
  }
  // Pre-flight: the full plan-analysis pipeline replaces the old bare
  // ValidateAnnotation call. Every error finding aborts execution with a
  // rule-tagged message; warnings and notes are tolerated here (callers
  // wanting them run AnalyzePlan themselves).
  {
    DiagnosticList diagnostics =
        AnalyzePlan(graph, annotation, catalog_, /*model=*/nullptr, cluster_);
    if (diagnostics.HasErrors()) {
      Status first = diagnostics.ToStatus();
      return Status(first.code(),
                    "plan rejected before execution: " + first.message());
    }
  }
  ExecResult result;
  std::unordered_map<int, Relation> live;
  const BufferPool::Stats pool_before = BufferPool::Default().snapshot();

  // Number of not-yet-executed consumer edges per vertex (used both to
  // free relations and to prove producers dead for payload stealing).
  std::vector<int> remaining(graph.num_vertices(), 0);
  for (int w = 0; w < graph.num_vertices(); ++w) {
    for (int in : graph.vertex(w).inputs) ++remaining[in];
  }

  // Fused-group consumption (DESIGN.md §15, zero-copy only): the plan's
  // fused groups run as in-place epilogue chains at their base vertex;
  // every member becomes a passthrough that charges its normal accounting
  // but transfers payload pointers. Plans without a fusion plan (hand-
  // built annotations, baseline planners) fall back to the detector's
  // maximal chains. Decisions depend only on the graph and annotation, so
  // dry-run and data mode agree. Plan-carried groups were already
  // validated by the pre-flight's MO070 rule; detector output is valid by
  // construction.
  std::unordered_map<int, const FusedGroup*> group_at;  // base v -> group
  std::unordered_map<int, int> passthrough;  // member w -> accumulator arg
  FusionPlan detected;
  if (fusion_ && zero_copy_) {
    const FusionPlan* fusion_plan = &annotation.fusion;
    if (fusion_plan->empty()) {
      detected = DetectFusionPlan(graph, annotation);
      fusion_plan = &detected;
    }
    for (const FusedGroup& g : fusion_plan->groups) {
      group_at[g.base] = &g;
      int prev = g.base;
      for (int m : g.members) {
        const Vertex& mx = graph.vertex(m);
        passthrough[m] = FusedAccumulatorArg(mx.op, mx, prev);
        prev = m;
      }
    }
  }

  // Materialized (on-disk) bytes of live relations per worker. Relations
  // persist until their last consumer runs; exceeding the per-worker disk
  // budget reproduces the paper's intermediate-data "Fail"s.
  std::vector<double> live_disk(cluster_.num_workers, 0.0);
  auto track = [&](const Relation& rel, double sign) {
    std::vector<double> bytes = rel.WorkerBytes(cluster_.num_workers);
    for (int w = 0; w < cluster_.num_workers; ++w) {
      live_disk[w] += sign * bytes[w];
    }
  };
  auto check_disk = [&]() -> Status {
    for (int w = 0; w < cluster_.num_workers; ++w) {
      result.stats.peak_worker_spill_bytes =
          std::max(result.stats.peak_worker_spill_bytes, live_disk[w]);
      if (live_disk[w] > cluster_.worker_spill_bytes) {
        return Status::OutOfMemory(
            "worker " + std::to_string(w) + " holds " +
            std::to_string(live_disk[w]) +
            " bytes of materialized relations (disk budget exceeded)");
      }
    }
    return Status::OK();
  };

  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = graph.vertex(v);
    const VertexAnnotation& va = annotation.at(v);
    if (vx.op == OpKind::kInput) {
      auto it = inputs.find(v);
      if (it == inputs.end()) {
        return Status::InvalidArgument("missing input relation for v" +
                                       std::to_string(v));
      }
      if (it->second.format != vx.input_format) {
        return Status::InvalidArgument(
            "input relation format mismatch for v" + std::to_string(v));
      }
      track(it->second, +1.0);
      live[v] = std::move(it->second);
      continue;
    }

    // Attributes the local-kernel activity and the deterministic memory
    // tallies accumulated since the snapshots to the most recently
    // appended stage record (the call that just committed it), so fused
    // and unfused stages are separately attributable. Pool counters stay
    // global: they are scheduling-dependent observability.
    auto attach_stage = [&result](const KernelCounters& before,
                                  const MemoryStats& mem_before) {
      const KernelCounters delta =
          KernelCountersDelta(before, KernelCountersSnapshot());
      if (result.stats.stages.empty()) return;
      ExecStats::StageRecord& rec = result.stats.stages.back();
      rec.kernel_flops += delta.gemm_flops + delta.elem_flops;
      rec.kernel_bytes += delta.gemm_bytes + delta.elem_bytes;
      rec.kernel_seconds += delta.gemm_seconds;
      const MemoryStats& now = result.stats.memory;
      rec.mem_bytes_copied += now.bytes_copied - mem_before.bytes_copied;
      rec.mem_bytes_moved += now.bytes_moved - mem_before.bytes_moved;
      rec.mem_fused_bytes_avoided +=
          now.fused_bytes_avoided - mem_before.fused_bytes_avoided;
      rec.mem_fused_kernels += now.fused_kernels - mem_before.fused_kernels;
    };

    // Apply per-edge transformations, then the implementation. An
    // argument is handed over as owned when the plan proves its producer
    // dead after this edge: transformed copies always (they die right
    // after the vertex), live relations when this is their last pending
    // consumer edge.
    std::vector<Relation> transformed(vx.inputs.size());
    std::vector<ExecInput> arg_inputs(vx.inputs.size());
    for (size_t j = 0; j < vx.inputs.size(); ++j) {
      Relation& src = live.at(vx.inputs[j]);
      const EdgeAnnotation& e = va.input_edges[j];
      if (e.transform.has_value()) {
        const KernelCounters kernels_before = KernelCountersSnapshot();
        const MemoryStats mem_before = result.stats.memory;
        MATOPT_ASSIGN_OR_RETURN(
            transformed[j], ExecuteTransform(catalog_, *e.transform, src,
                                             cluster_, &result.stats));
        attach_stage(kernels_before, mem_before);
        track(transformed[j], +1.0);
        arg_inputs[j].rel = &transformed[j];
        if (zero_copy_) arg_inputs[j].owned = &transformed[j];
      } else {
        arg_inputs[j].rel = &src;
        if (zero_copy_ && remaining[vx.inputs[j]] == 1) {
          arg_inputs[j].owned = &src;
        }
      }
    }
    ExecOptions opts;
    opts.zero_copy = zero_copy_;
    if (auto pit = passthrough.find(v); pit != passthrough.end()) {
      opts.passthrough_arg = pit->second;
    }
    MATOPT_RETURN_IF_ERROR(check_disk());
    const KernelCounters kernels_before = KernelCountersSnapshot();
    const MemoryStats mem_before = result.stats.memory;
    MATOPT_ASSIGN_OR_RETURN(
        Relation out,
        ExecuteImpl(catalog_, va.impl, va.output_format, arg_inputs, vx,
                    cluster_, &result.stats, opts));
    // Base of a fused group: apply the member chain in place over the
    // fresh output payloads. The kernel work lands on this vertex's stage
    // via the attach below; the members' own steps keep their normal
    // simulated accounting and pass the transformed payloads through.
    if (auto git = group_at.find(v); git != group_at.end()) {
      if (out.has_data) {
        ApplyFusedGroupChain(graph, *git->second, passthrough, live, &out);
      }
      ++result.stats.memory.fused_groups;
    }
    attach_stage(kernels_before, mem_before);
    track(out, +1.0);
    MATOPT_RETURN_IF_ERROR(check_disk());
    live[v] = std::move(out);

    for (size_t j = 0; j < vx.inputs.size(); ++j) {
      if (va.input_edges[j].transform.has_value()) {
        track(transformed[j], -1.0);  // transformed copies die immediately
        if (zero_copy_) RecycleRelation(&transformed[j]);
      }
    }
    for (int in : vx.inputs) {
      if (--remaining[in] == 0) {
        track(live.at(in), -1.0);
        if (zero_copy_) RecycleRelation(&live.at(in));
        live.erase(in);
      }
    }
  }

  for (int sink : graph.Sinks()) {
    result.sinks.emplace(sink, std::move(live.at(sink)));
  }

  // Pool counters are process-global and scheduling-dependent (worker
  // threads share the store), so they are observability only — the
  // deterministic memory fields above never depend on them.
  const BufferPool::Stats pool_after = BufferPool::Default().snapshot();
  result.stats.memory.pool_hits = pool_after.hits - pool_before.hits;
  result.stats.memory.pool_misses = pool_after.misses - pool_before.misses;
  result.stats.memory.pool_bytes_recycled =
      pool_after.bytes_recycled - pool_before.bytes_recycled;
  result.stats.kernels =
      KernelCountersDelta(kernels_run_before, KernelCountersSnapshot());
  return result;
}

Result<ExecResult> PlanExecutor::DryRun(const ComputeGraph& graph,
                                        const Annotation& annotation) const {
  std::unordered_map<int, Relation> inputs;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    const Vertex& vx = graph.vertex(v);
    if (vx.op != OpKind::kInput) continue;
    inputs[v] = MakeDryRelation(vx.type, vx.input_format, vx.sparsity,
                                cluster_);
  }
  return Execute(graph, annotation, std::move(inputs));
}

}  // namespace matopt
