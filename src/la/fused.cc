#include "la/fused.h"

#include "la/kernels.h"

namespace matopt {

void ApplyFusedChain(const std::vector<FusedStep>& steps, DenseMatrix* acc) {
  for (const FusedStep& step : steps) {
    switch (step.op) {
      case FusedOp::kAdd:
        step.acc_is_lhs ? AddInto(*acc, *step.operand, acc)
                        : AddInto(*step.operand, *acc, acc);
        break;
      case FusedOp::kSub:
        step.acc_is_lhs ? SubInto(*acc, *step.operand, acc)
                        : SubInto(*step.operand, *acc, acc);
        break;
      case FusedOp::kHadamard:
        step.acc_is_lhs ? HadamardInto(*acc, *step.operand, acc)
                        : HadamardInto(*step.operand, *acc, acc);
        break;
      case FusedOp::kElemDiv:
        step.acc_is_lhs ? ElemDivInto(*acc, *step.operand, acc)
                        : ElemDivInto(*step.operand, *acc, acc);
        break;
      case FusedOp::kReluGrad:
        // acc_is_lhs: the accumulator carries z; else it is the upstream
        // gradient.
        step.acc_is_lhs ? ReluGradInto(*acc, *step.operand, acc)
                        : ReluGradInto(*step.operand, *acc, acc);
        break;
      case FusedOp::kScalarMul:
        ScalarMulInto(*acc, step.scalar, acc);
        break;
      case FusedOp::kRelu:
        ReluInto(*acc, acc);
        break;
      case FusedOp::kSigmoid:
        SigmoidInto(*acc, acc);
        break;
      case FusedOp::kExp:
        ExpInto(*acc, acc);
        break;
      case FusedOp::kBiasRowAdd:
        BroadcastRowAddInto(*acc, *step.operand, acc);
        break;
    }
  }
}

}  // namespace matopt
