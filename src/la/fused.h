#ifndef MATOPT_LA_FUSED_H_
#define MATOPT_LA_FUSED_H_

#include <vector>

#include "la/dense_matrix.h"

namespace matopt {

/// One elementwise operation of a fused epilogue chain (DESIGN.md §15).
/// The accumulator is the payload being transformed in place; `operand`
/// is the secondary input of binary ops (null for unary maps).
enum class FusedOp {
  kAdd,
  kSub,
  kHadamard,
  kElemDiv,
  kReluGrad,    // relu'(z) ⊙ upstream
  kScalarMul,
  kRelu,
  kSigmoid,
  kExp,
  kBiasRowAdd,  // accumulator + row vector broadcast over rows
};

/// One step of a fused chain. For binary ops `acc_is_lhs` says which side
/// the accumulator feeds (Sub and ReluGrad are not commutative); for
/// kScalarMul the factor rides in `scalar`; for kBiasRowAdd `operand` is
/// the 1 x cols slice aligned with the accumulator tuple.
struct FusedStep {
  FusedOp op = FusedOp::kAdd;
  bool acc_is_lhs = true;
  double scalar = 0.0;
  const DenseMatrix* operand = nullptr;
};

/// Applies the chain to `*acc` in place, one whole-matrix pass per step.
/// Each step delegates to the corresponding *Into kernel, so every
/// element takes exactly the value the out-of-place kernel sequence would
/// produce (same order, mul-then-add, no FMA) and the SIMD dispatch plus
/// roofline accounting of the kernels apply unchanged — fusion is
/// bit-invisible by construction.
void ApplyFusedChain(const std::vector<FusedStep>& steps, DenseMatrix* acc);

}  // namespace matopt

#endif  // MATOPT_LA_FUSED_H_
