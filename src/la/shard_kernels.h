#ifndef MATOPT_LA_SHARD_KERNELS_H_
#define MATOPT_LA_SHARD_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

namespace matopt {

/// Shard-local kernel entry points for the distributed runtime
/// (DESIGN.md §12). Each one computes one output tuple from the operand
/// tuples a worker gathered through the exchanges, using exactly the
/// kernel sequences and accumulation orders of the single-node executor's
/// data paths — that ordered reuse is what makes distributed sinks
/// bit-identical to single-node execution at any worker count. The inputs
/// are plain matrices (this layer knows nothing about relations or
/// placement); callers pass operands in canonical chunk-key order.

/// Ordered GEMM sum over aligned (lhs, rhs) pairs: the tile shuffle
/// join's per-output-tile accumulation, sum_k a_k * b_k with k ascending.
/// The pair list must be non-empty.
DenseMatrix ShardGemmSum(
    const std::vector<std::pair<const DenseMatrix*, const DenseMatrix*>>&
        products);

/// Row strip times a column-partitioned right-hand side: each block's
/// product accumulates into the matching column window of the output
/// strip (a.rows x out_cols). `col_offsets[i]` is block i's first output
/// column.
DenseMatrix ShardConcatGemm(const DenseMatrix& a,
                            const std::vector<const DenseMatrix*>& blocks,
                            const std::vector<int64_t>& col_offsets,
                            int64_t out_cols);

/// Sparse CSR row strip times a tiled dense rhs: for each tile, the
/// matching column slice of `a` multiplies the tile into the output
/// strip's column window. `row_offsets[i]` is tile i's first row of the
/// rhs (selecting a's columns), `col_offsets[i]` its first output column.
DenseMatrix ShardSpStripTilesGemm(const SparseMatrix& a,
                                  const std::vector<const DenseMatrix*>& tiles,
                                  const std::vector<int64_t>& row_offsets,
                                  const std::vector<int64_t>& col_offsets,
                                  int64_t out_cols);

/// Ordered element-wise sum of partial results (the reduction merge):
/// parts[0] + parts[1] + ... accumulated left to right. The list must be
/// non-empty; all parts share one shape.
DenseMatrix ShardOrderedSum(const std::vector<const DenseMatrix*>& parts);

}  // namespace matopt

#endif  // MATOPT_LA_SHARD_KERNELS_H_
