#ifndef MATOPT_LA_KERNELS_H_
#define MATOPT_LA_KERNELS_H_

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

namespace matopt {

/// Local dense linear-algebra kernels. These are the computational leaves
/// of every atomic computation implementation: distributed implementations
/// apply them per tuple and combine the results relationally.

/// Returns A * B. Requires a.cols() == b.rows().
DenseMatrix Gemm(const DenseMatrix& a, const DenseMatrix& b);

/// C += A * B.
void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c);

/// C_view += A * B, accumulating straight into a block view of the
/// caller's buffer (e.g. an output strip). Same loop order — and therefore
/// bit-identical results — as the DenseMatrix* overload.
void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseBlockView c);

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Sub(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix ElemDiv(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix ScalarMul(const DenseMatrix& a, double s);
DenseMatrix Transpose(const DenseMatrix& a);
DenseMatrix Relu(const DenseMatrix& a);

/// Derivative of relu evaluated at pre-activation `z`, multiplied
/// element-wise into `upstream`: out = upstream .* (z > 0).
DenseMatrix ReluGrad(const DenseMatrix& z, const DenseMatrix& upstream);

/// In-place element-wise variants. `out` must already have the result
/// shape and may alias either input; every element is overwritten with
/// exactly the value the out-of-place kernel would produce. The executor
/// uses these to reuse a dying operand's buffer instead of allocating.
void AddInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out);
void SubInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out);
void HadamardInto(const DenseMatrix& a, const DenseMatrix& b,
                  DenseMatrix* out);
void ElemDivInto(const DenseMatrix& a, const DenseMatrix& b,
                 DenseMatrix* out);
void ReluGradInto(const DenseMatrix& z, const DenseMatrix& upstream,
                  DenseMatrix* out);
void ScalarMulInto(const DenseMatrix& a, double s, DenseMatrix* out);
void ReluInto(const DenseMatrix& a, DenseMatrix* out);
void SigmoidInto(const DenseMatrix& a, DenseMatrix* out);
void ExpInto(const DenseMatrix& a, DenseMatrix* out);
void SoftmaxInto(const DenseMatrix& a, DenseMatrix* out);
void BroadcastRowAddInto(const DenseMatrix& a, const DenseMatrix& vec,
                         DenseMatrix* out);

/// Fused bias-add + relu: out = max(a + vec_broadcast, 0). Bit-identical
/// to Relu(BroadcastRowAdd(a, vec)).
DenseMatrix BiasRelu(const DenseMatrix& a, const DenseMatrix& vec);
void BiasReluInto(const DenseMatrix& a, const DenseMatrix& vec,
                  DenseMatrix* out);

/// Fused relu-grad + Hadamard for the backprop hot path. With
/// t = (z > 0 ? upstream : 0), returns other .* t when `other_is_lhs`
/// and t .* other otherwise — bit-identical to
/// Hadamard(other, ReluGrad(z, upstream)) resp. Hadamard(ReluGrad(...),
/// other), including signed-zero propagation (t is computed first, then
/// multiplied, never short-circuited).
DenseMatrix ReluGradHadamard(const DenseMatrix& z, const DenseMatrix& upstream,
                             const DenseMatrix& other, bool other_is_lhs);
void ReluGradHadamardInto(const DenseMatrix& z, const DenseMatrix& upstream,
                          const DenseMatrix& other, bool other_is_lhs,
                          DenseMatrix* out);

/// Row-wise softmax with the usual max-subtraction for stability.
DenseMatrix Softmax(const DenseMatrix& a);

DenseMatrix Sigmoid(const DenseMatrix& a);
DenseMatrix Exp(const DenseMatrix& a);

/// Column vector (rows x 1) of row sums.
DenseMatrix RowSum(const DenseMatrix& a);

/// Row vector (1 x cols) of column sums.
DenseMatrix ColSum(const DenseMatrix& a);

/// out(r, c) = a(r, c) + vec(0, c); vec must be 1 x a.cols().
DenseMatrix BroadcastRowAdd(const DenseMatrix& a, const DenseMatrix& vec);

/// Inverse of a square matrix by LU decomposition with partial pivoting.
/// Fails with InvalidArgument when the matrix is singular or not square.
Result<DenseMatrix> Inverse(const DenseMatrix& a);

/// Identity matrix of order n.
DenseMatrix Identity(int64_t n);

/// Fault injection for the differential-fuzzing meta-test: when `delta` is
/// non-zero, every GemmAccumulate (and therefore Gemm) perturbs element
/// (0, 0) of its output by `delta` after the correct accumulation. The
/// fuzz reference interpreter evaluates with its own independent kernels,
/// so an injected fault surfaces as an execution-vs-reference mismatch
/// that the harness must detect and shrink. Always 0.0 in production; the
/// hot-path cost is one relaxed atomic load per GemmAccumulate call.
void SetKernelFaultDelta(double delta);
double KernelFaultDelta();

}  // namespace matopt

#endif  // MATOPT_LA_KERNELS_H_
