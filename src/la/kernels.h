#ifndef MATOPT_LA_KERNELS_H_
#define MATOPT_LA_KERNELS_H_

#include "common/status.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

namespace matopt {

/// Local dense linear-algebra kernels. These are the computational leaves
/// of every atomic computation implementation: distributed implementations
/// apply them per tuple and combine the results relationally.

/// Returns A * B. Requires a.cols() == b.rows().
DenseMatrix Gemm(const DenseMatrix& a, const DenseMatrix& b);

/// C += A * B.
void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c);

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Sub(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix ElemDiv(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix ScalarMul(const DenseMatrix& a, double s);
DenseMatrix Transpose(const DenseMatrix& a);
DenseMatrix Relu(const DenseMatrix& a);

/// Derivative of relu evaluated at pre-activation `z`, multiplied
/// element-wise into `upstream`: out = upstream .* (z > 0).
DenseMatrix ReluGrad(const DenseMatrix& z, const DenseMatrix& upstream);

/// Row-wise softmax with the usual max-subtraction for stability.
DenseMatrix Softmax(const DenseMatrix& a);

DenseMatrix Sigmoid(const DenseMatrix& a);
DenseMatrix Exp(const DenseMatrix& a);

/// Column vector (rows x 1) of row sums.
DenseMatrix RowSum(const DenseMatrix& a);

/// Row vector (1 x cols) of column sums.
DenseMatrix ColSum(const DenseMatrix& a);

/// out(r, c) = a(r, c) + vec(0, c); vec must be 1 x a.cols().
DenseMatrix BroadcastRowAdd(const DenseMatrix& a, const DenseMatrix& vec);

/// Inverse of a square matrix by LU decomposition with partial pivoting.
/// Fails with InvalidArgument when the matrix is singular or not square.
Result<DenseMatrix> Inverse(const DenseMatrix& a);

/// Identity matrix of order n.
DenseMatrix Identity(int64_t n);

}  // namespace matopt

#endif  // MATOPT_LA_KERNELS_H_
