#include "la/shard_kernels.h"

#include "la/kernels.h"

namespace matopt {

DenseMatrix ShardGemmSum(
    const std::vector<std::pair<const DenseMatrix*, const DenseMatrix*>>&
        products) {
  DenseMatrix sum;
  for (const auto& [a, b] : products) {
    if (sum.size() == 0) sum = DenseMatrix::Pooled(a->rows(), b->cols());
    GemmAccumulate(*a, *b, &sum);
  }
  return sum;
}

DenseMatrix ShardConcatGemm(const DenseMatrix& a,
                            const std::vector<const DenseMatrix*>& blocks,
                            const std::vector<int64_t>& col_offsets,
                            int64_t out_cols) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), out_cols);
  for (size_t i = 0; i < blocks.size(); ++i) {
    GemmAccumulate(a, *blocks[i],
                   out.MutableBlock(0, col_offsets[i], a.rows(),
                                    blocks[i]->cols()));
  }
  return out;
}

DenseMatrix ShardSpStripTilesGemm(const SparseMatrix& a,
                                  const std::vector<const DenseMatrix*>& tiles,
                                  const std::vector<int64_t>& row_offsets,
                                  const std::vector<int64_t>& col_offsets,
                                  int64_t out_cols) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), out_cols);
  for (size_t i = 0; i < tiles.size(); ++i) {
    SparseMatrix slice = a.ColSlice(row_offsets[i], tiles[i]->rows());
    SpMmAccumulate(slice, *tiles[i],
                   out.MutableBlock(0, col_offsets[i], a.rows(),
                                    tiles[i]->cols()));
    slice.Recycle();
  }
  return out;
}

DenseMatrix ShardOrderedSum(const std::vector<const DenseMatrix*>& parts) {
  DenseMatrix sum = *parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    AddInto(sum, *parts[i], &sum);
  }
  return sum;
}

}  // namespace matopt
