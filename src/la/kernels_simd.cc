#include "la/kernels_simd.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "la/kernel_grain.h"
#include "la/simd.h"

#ifdef MATOPT_HAVE_AVX2
#include <immintrin.h>
#endif

namespace matopt {

namespace {

// -1 = no override (environment decides), 0 = forced scalar,
// 1 = forced vectorized. Same shape as the BufferPool override.
std::atomic<int> g_simd_override{-1};

bool ReadEnvEnabled() {
  const char* env = std::getenv("MATOPT_SIMD");
  return env == nullptr || env[0] != '0';
}

}  // namespace

bool SimdCompiled() {
#ifdef MATOPT_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool SimdSupportedByCpu() {
#ifdef MATOPT_HAVE_AVX2
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

bool SimdEnabled() {
  if (!SimdCompiled() || !SimdSupportedByCpu()) return false;
  const int override_value = g_simd_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value != 0;
  return ReadEnvEnabled();
}

void OverrideSimdEnabled(bool enabled) {
  g_simd_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ClearSimdOverride() {
  g_simd_override.store(-1, std::memory_order_relaxed);
}

const char* SimdIsaName() { return SimdEnabled() ? "avx2" : "scalar"; }

namespace simdk {

bool Compiled() { return SimdCompiled(); }

#ifdef MATOPT_HAVE_AVX2

namespace {

constexpr int64_t kMC = kGemmRowBlock;  // rows of A packed per block
constexpr int64_t kKC = 256;            // k depth per packed block
constexpr int kMR = 6;                  // microkernel rows (kMC % kMR == 0)
constexpr int kNR = 8;                  // microkernel cols (two ymm lanes)

static_assert(kMC % kMR == 0, "packed A group offsets assume full groups");

/// Register-tiled MR_ x 8 microkernel over one packed k block. C is
/// loaded into registers, accumulated ascending-k with a separate
/// multiply and add per term (the TU is compiled without FMA and with
/// -ffp-contract=off, so no contraction is possible), then stored —
/// never staged through a zeroed temporary, which would change the
/// rounding order. 12 accumulators + 2 B lanes + 1 broadcast = 15 ymm.
template <int MR_>
void MicroKernel(const double* ap, const double* bp, double* c,
                 int64_t c_stride, int64_t kc) {
  __m256d lo[MR_], hi[MR_];
  for (int r = 0; r < MR_; ++r) {
    lo[r] = _mm256_loadu_pd(c + r * c_stride);
    hi[r] = _mm256_loadu_pd(c + r * c_stride + 4);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_loadu_pd(bp);
    const __m256d b1 = _mm256_loadu_pd(bp + 4);
    bp += kNR;
    for (int r = 0; r < MR_; ++r) {
      const __m256d av = _mm256_broadcast_sd(ap + r);
      lo[r] = _mm256_add_pd(lo[r], _mm256_mul_pd(av, b0));
      hi[r] = _mm256_add_pd(hi[r], _mm256_mul_pd(av, b1));
    }
    ap += MR_;
  }
  for (int r = 0; r < MR_; ++r) {
    _mm256_storeu_pd(c + r * c_stride, lo[r]);
    _mm256_storeu_pd(c + r * c_stride + 4, hi[r]);
  }
}

void RunMicroKernel(int mr, const double* ap, const double* bp, double* c,
                    int64_t c_stride, int64_t kc) {
  switch (mr) {
    case 6: MicroKernel<6>(ap, bp, c, c_stride, kc); break;
    case 5: MicroKernel<5>(ap, bp, c, c_stride, kc); break;
    case 4: MicroKernel<4>(ap, bp, c, c_stride, kc); break;
    case 3: MicroKernel<3>(ap, bp, c, c_stride, kc); break;
    case 2: MicroKernel<2>(ap, bp, c, c_stride, kc); break;
    default: MicroKernel<1>(ap, bp, c, c_stride, kc); break;
  }
}

/// Packs the full-panel columns [0, n8) of B once, shared by every row
/// chunk. Layout: ascending k blocks, then ascending 8-wide j panels,
/// each panel kc x 8 row-major — so panel (kb, jp) starts at
/// kb * n8 + jp * kc * kNR (all preceding k blocks are full).
void PackB(const DenseMatrix& b, int64_t n8, double* pack) {
  const int64_t k = b.rows();
  const int64_t n = b.cols();
  const int64_t npanels = n8 / kNR;
  ParallelFor(0, npanels, RowGrain(npanels, kNR * k),
              [&](int64_t jp0, int64_t jp1) {
                for (int64_t kb = 0; kb < k; kb += kKC) {
                  const int64_t kc = std::min(kKC, k - kb);
                  for (int64_t jp = jp0; jp < jp1; ++jp) {
                    double* dst = pack + kb * n8 + jp * kc * kNR;
                    const double* src = b.data() + kb * n + jp * kNR;
                    for (int64_t p = 0; p < kc; ++p) {
                      _mm256_storeu_pd(dst, _mm256_loadu_pd(src));
                      _mm256_storeu_pd(dst + 4, _mm256_loadu_pd(src + 4));
                      dst += kNR;
                      src += n;
                    }
                  }
                }
              });
}

/// Packs A rows [ic, ie) x k columns [kb, kb + kc) in kMR-row groups:
/// group g occupies [g * kMR * kc, ...) with element (p, r) at
/// p * mr + r, where mr is the group's (possibly partial) height.
void PackA(const DenseMatrix& a, int64_t ic, int64_t ie, int64_t kb,
           int64_t kc, double* dst) {
  const int64_t k = a.cols();
  for (int64_t g = ic; g < ie; g += kMR) {
    const int mr = static_cast<int>(std::min<int64_t>(kMR, ie - g));
    double* gp = dst + ((g - ic) / kMR) * (kMR * kc);
    for (int r = 0; r < mr; ++r) {
      const double* arow = a.data() + (g + r) * k + kb;
      for (int64_t p = 0; p < kc; ++p) gp[p * mr + r] = arow[p];
    }
  }
}

}  // namespace

void GemmAccumulateBlocked(const DenseMatrix& a, const DenseMatrix& b,
                           double* c, int64_t c_stride) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  const int64_t n8 = n - (n % kNR);
  BufferPool& pool = BufferPool::Default();

  std::vector<double> bpack = pool.AcquireZeroed(std::max<int64_t>(1, k * n8));
  PackB(b, n8, bpack.data());

  ParallelFor(0, m, GemmRowGrain(m, k, n), [&](int64_t r0, int64_t r1) {
    std::vector<double> apack = pool.AcquireZeroed(kMC * kKC);
    for (int64_t ic = r0; ic < r1; ic += kMC) {
      const int64_t ie = std::min(r1, ic + kMC);
      for (int64_t kb = 0; kb < k; kb += kKC) {
        const int64_t kc = std::min(kKC, k - kb);
        PackA(a, ic, ie, kb, kc, apack.data());
        for (int64_t jp = 0; jp < n8 / kNR; ++jp) {
          const double* bp = bpack.data() + kb * n8 + jp * kc * kNR;
          for (int64_t g = ic; g < ie; g += kMR) {
            const int mr = static_cast<int>(std::min<int64_t>(kMR, ie - g));
            const double* ap =
                apack.data() + ((g - ic) / kMR) * (kMR * kc);
            RunMicroKernel(mr, ap, bp, c + g * c_stride + jp * kNR, c_stride,
                           kc);
          }
        }
        if (n8 < n) {
          // Column tail: scalar, ascending k within the block so the
          // overall per-element term order stays ascending.
          for (int64_t i = ic; i < ie; ++i) {
            const double* arow = a.data() + i * k + kb;
            double* crow = c + i * c_stride;
            for (int64_t p = 0; p < kc; ++p) {
              const double av = arow[p];
              const double* brow = b.data() + (kb + p) * n;
              for (int64_t j = n8; j < n; ++j) crow[j] += av * brow[j];
            }
          }
        }
      }
    }
    pool.Release(std::move(apack));
  });

  pool.Release(std::move(bpack));
}

void ZipRange(ZipKind kind, const double* a, const double* b, double* o,
              int64_t count) {
  int64_t i = 0;
  switch (kind) {
    case ZipKind::kAdd:
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(
            o + i, _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
      for (; i < count; ++i) o[i] = a[i] + b[i];
      break;
    case ZipKind::kSub:
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(
            o + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
      for (; i < count; ++i) o[i] = a[i] - b[i];
      break;
    case ZipKind::kMul:
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(
            o + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
      for (; i < count; ++i) o[i] = a[i] * b[i];
      break;
    case ZipKind::kDiv:
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(
            o + i, _mm256_div_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
      for (; i < count; ++i) o[i] = a[i] / b[i];
      break;
    case ZipKind::kReluGrad: {
      // (z > 0 ? up : 0.0): ordered non-signaling GT mask, so a NaN z
      // selects 0.0 exactly like the scalar comparison.
      const __m256d zero = _mm256_setzero_pd();
      for (; i + 4 <= count; i += 4) {
        const __m256d up = _mm256_loadu_pd(a + i);
        const __m256d z = _mm256_loadu_pd(b + i);
        const __m256d mask = _mm256_cmp_pd(z, zero, _CMP_GT_OQ);
        _mm256_storeu_pd(o + i, _mm256_and_pd(mask, up));
      }
      for (; i < count; ++i) o[i] = b[i] > 0.0 ? a[i] : 0.0;
      break;
    }
  }
}

void MapRange(MapKind kind, const double* a, double s, double* o,
              int64_t count) {
  int64_t i = 0;
  switch (kind) {
    case MapKind::kRelu: {
      // maxpd returns its second operand when either input is NaN or the
      // inputs compare equal, so max(x, +0.0) matches (x > 0 ? x : 0.0)
      // bit-for-bit on NaN, +0.0 and -0.0 alike.
      const __m256d zero = _mm256_setzero_pd();
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(o + i, _mm256_max_pd(_mm256_loadu_pd(a + i), zero));
      for (; i < count; ++i) o[i] = a[i] > 0.0 ? a[i] : 0.0;
      break;
    }
    case MapKind::kScalarMul: {
      const __m256d sv = _mm256_set1_pd(s);
      for (; i + 4 <= count; i += 4)
        _mm256_storeu_pd(o + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), sv));
      for (; i < count; ++i) o[i] = a[i] * s;
      break;
    }
  }
}

void BiasRowRange(const double* in, const double* v, double* o, int64_t cols,
                  bool relu) {
  int64_t j = 0;
  if (relu) {
    const __m256d zero = _mm256_setzero_pd();
    for (; j + 4 <= cols; j += 4)
      _mm256_storeu_pd(
          o + j, _mm256_max_pd(
                     _mm256_add_pd(_mm256_loadu_pd(in + j), _mm256_loadu_pd(v + j)),
                     zero));
    for (; j < cols; ++j) {
      const double t = in[j] + v[j];
      o[j] = t > 0.0 ? t : 0.0;
    }
  } else {
    for (; j + 4 <= cols; j += 4)
      _mm256_storeu_pd(
          o + j, _mm256_add_pd(_mm256_loadu_pd(in + j), _mm256_loadu_pd(v + j)));
    for (; j < cols; ++j) o[j] = in[j] + v[j];
  }
}

void ReluGradHadamardRange(const double* z, const double* u,
                           const double* other, double* o, int64_t count,
                           bool other_is_lhs) {
  const __m256d zero = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d zv = _mm256_loadu_pd(z + i);
    const __m256d uv = _mm256_loadu_pd(u + i);
    const __m256d ov = _mm256_loadu_pd(other + i);
    const __m256d mask = _mm256_cmp_pd(zv, zero, _CMP_GT_OQ);
    const __m256d t = _mm256_and_pd(mask, uv);
    _mm256_storeu_pd(o + i, other_is_lhs ? _mm256_mul_pd(ov, t)
                                         : _mm256_mul_pd(t, ov));
  }
  for (; i < count; ++i) {
    const double t = z[i] > 0.0 ? u[i] : 0.0;
    o[i] = other_is_lhs ? other[i] * t : t * other[i];
  }
}

#else  // !MATOPT_HAVE_AVX2

// Scalar-only build: the dispatch layer never routes here (SimdEnabled()
// is constant false), so reaching a stub is a logic error.

void GemmAccumulateBlocked(const DenseMatrix&, const DenseMatrix&, double*,
                           int64_t) {
  std::abort();
}

void ZipRange(ZipKind, const double*, const double*, double*, int64_t) {
  std::abort();
}

void MapRange(MapKind, const double*, double, double*, int64_t) {
  std::abort();
}

void BiasRowRange(const double*, const double*, double*, int64_t, bool) {
  std::abort();
}

void ReluGradHadamardRange(const double*, const double*, const double*,
                           double*, int64_t, bool) {
  std::abort();
}

#endif  // MATOPT_HAVE_AVX2

}  // namespace simdk

}  // namespace matopt
