#ifndef MATOPT_LA_DENSE_MATRIX_H_
#define MATOPT_LA_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace matopt {

/// Mutable view of a rectangular block inside a row-major buffer. Kernels
/// accumulate through this to write directly into a strip owned by the
/// caller, instead of materializing a Block() copy and SetBlock()-ing it
/// back. `stride` is the row pitch of the underlying buffer.
struct DenseBlockView {
  double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;

  double* row(int64_t r) const { return data + r * stride; }
};

/// Row-major dense matrix of doubles. This is the local computational
/// kernel type: distributed layouts (strips, tiles, single tuple) store one
/// DenseMatrix per tuple.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {}

  /// Zero-filled matrix whose storage comes from the process BufferPool
  /// when a recycled buffer of the right size class is available.
  /// Observable state is identical to DenseMatrix(rows, cols).
  static DenseMatrix Pooled(int64_t rows, int64_t cols);

  /// Returns this matrix's storage to the BufferPool and leaves the matrix
  /// empty (0 x 0). Call only on matrices about to be destroyed.
  void Recycle();

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double operator()(int64_t r, int64_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(int64_t r, int64_t c) { return data_[r * cols_ + c]; }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  const double* row(int64_t r) const { return data_.data() + r * cols_; }
  double* row(int64_t r) { return data_.data() + r * cols_; }

  /// Extracts the block [r0, r0+nr) x [c0, c0+nc). Clamps at the edges so
  /// ragged final strips/tiles are supported.
  DenseMatrix Block(int64_t r0, int64_t c0, int64_t nr, int64_t nc) const;

  /// Writes `block` into this matrix at offset (r0, c0).
  void SetBlock(int64_t r0, int64_t c0, const DenseMatrix& block);

  /// Mutable view of the block [r0, r0+nr) x [c0, c0+nc), clamped at the
  /// edges like Block(). The view aliases this matrix's storage.
  DenseBlockView MutableBlock(int64_t r0, int64_t c0, int64_t nr, int64_t nc);

  /// Fraction of entries that are non-zero.
  double Sparsity() const;

  bool operator==(const DenseMatrix& other) const = default;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

/// True when the two matrices have identical shape and all entries agree
/// within `atol + rtol * |reference|`.
bool AllClose(const DenseMatrix& a, const DenseMatrix& b, double rtol = 1e-9,
              double atol = 1e-9);

}  // namespace matopt

#endif  // MATOPT_LA_DENSE_MATRIX_H_
