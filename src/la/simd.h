#ifndef MATOPT_LA_SIMD_H_
#define MATOPT_LA_SIMD_H_

namespace matopt {

/// Runtime control of the vectorized kernel paths (DESIGN.md §13).
///
/// The AVX2 microkernels live in la/kernels_simd.cc, compiled with -mavx2
/// only when CMake feature detection succeeds (-DMATOPT_SIMD=OFF forces
/// the portable scalar build). At runtime the vectorized path is taken
/// when it was compiled in, the CPU reports AVX2, and neither the
/// MATOPT_SIMD environment variable (0 = scalar, 1 = vectorized) nor a
/// programmatic override says otherwise.
///
/// Every SIMD kernel follows the exact scalar kernel contract — for GEMM,
/// each output element accumulates its terms in ascending-k order, one
/// multiply followed by one add per term (no FMA contraction) — so the
/// two paths are bit-identical and the knob is output-invariant, like
/// MATOPT_THREADS / MATOPT_ZERO_COPY / MATOPT_POOL.

/// True when la/kernels_simd.cc was built with AVX2 support.
bool SimdCompiled();

/// True when the running CPU supports the compiled vector ISA.
bool SimdSupportedByCpu();

/// Whether kernels take the vectorized path right now: the override when
/// set, else the MATOPT_SIMD environment variable, else compiled-in
/// availability AND CPU support.
bool SimdEnabled();

/// Forces SimdEnabled() for A/B runs within one process (bench_kernels,
/// the fuzz simd_off determinism oracle). Enabling when the vectorized
/// path is not available is a no-op (kernels stay scalar).
void OverrideSimdEnabled(bool enabled);
/// Restores environment-driven behaviour after OverrideSimdEnabled.
void ClearSimdOverride();

/// "avx2" when the vectorized path is active, "scalar" otherwise.
const char* SimdIsaName();

}  // namespace matopt

#endif  // MATOPT_LA_SIMD_H_
