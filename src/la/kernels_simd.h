#ifndef MATOPT_LA_KERNELS_SIMD_H_
#define MATOPT_LA_KERNELS_SIMD_H_

#include <cstdint>

#include "la/dense_matrix.h"

namespace matopt::simdk {

/// Internal interface of the vectorized kernel TU (la/kernels_simd.cc,
/// compiled with -mavx2 when CMake feature detection succeeds). Callers
/// must gate on SimdEnabled() (la/simd.h): the stub build of these
/// functions aborts, because reaching them means the dispatch layer is
/// broken, not that the fallback should run.
///
/// Contract (DESIGN.md §13): every function produces bit-identical output
/// to the scalar kernel it accelerates. For GEMM this means each output
/// element accumulates its k terms in ascending order, one IEEE multiply
/// followed by one IEEE add per term — vectorization is over *columns*
/// (independent output elements), never over the k reduction.

/// True when this TU was compiled with the AVX2 microkernels.
bool Compiled();

/// Cache-blocked, packed, register-tiled GEMM: c[i][j] += sum_k a*b over
/// the full m x k x n problem, parallelized over row blocks on the
/// default pool. `c_stride` is the row pitch of the output buffer (cols
/// for a DenseMatrix, the parent pitch for a DenseBlockView). Packing
/// buffers come from the BufferPool.
void GemmAccumulateBlocked(const DenseMatrix& a, const DenseMatrix& b,
                           double* c, int64_t c_stride);

enum class ZipKind { kAdd, kSub, kMul, kDiv, kReluGrad };

/// o[i] = op(a[i], b[i]) over [0, count). For kReluGrad, `a` is the
/// upstream gradient and `b` the pre-activation z (matching the scalar
/// kReluGradOp argument order).
void ZipRange(ZipKind kind, const double* a, const double* b, double* o,
              int64_t count);

enum class MapKind { kRelu, kScalarMul };

/// o[i] = op(a[i]) over [0, count); `s` is the kScalarMul scalar.
void MapRange(MapKind kind, const double* a, double s, double* o,
              int64_t count);

/// One row of the bias epilogue: o[c] = in[c] + v[c], clamped at zero
/// when `relu` (the fused BiasRelu path).
void BiasRowRange(const double* in, const double* v, double* o, int64_t cols,
                  bool relu);

/// Fused relu-grad + Hadamard: with t = (z[i] > 0 ? u[i] : 0),
/// o[i] = other[i] * t when `other_is_lhs`, else t * other[i].
void ReluGradHadamardRange(const double* z, const double* u,
                           const double* other, double* o, int64_t count,
                           bool other_is_lhs);

}  // namespace matopt::simdk

#endif  // MATOPT_LA_KERNELS_SIMD_H_
