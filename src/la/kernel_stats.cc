#include "la/kernel_stats.h"

#include <atomic>

namespace matopt {

namespace {

/// One relaxed atomic add per *kernel call* (not per element), so the
/// counters are far off every inner loop.
struct AtomicCounters {
  std::atomic<double> gemm_flops{0.0};
  std::atomic<double> gemm_bytes{0.0};
  std::atomic<double> gemm_seconds{0.0};
  std::atomic<int64_t> gemm_calls{0};
  std::atomic<int64_t> gemm_simd_calls{0};
  std::atomic<double> elem_flops{0.0};
  std::atomic<double> elem_bytes{0.0};
  std::atomic<int64_t> elem_calls{0};
  std::atomic<int64_t> elem_simd_calls{0};
};

AtomicCounters& Counters() {
  static AtomicCounters counters;
  return counters;
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

KernelCounters KernelCountersSnapshot() {
  const AtomicCounters& c = Counters();
  KernelCounters out;
  out.gemm_flops = c.gemm_flops.load(std::memory_order_relaxed);
  out.gemm_bytes = c.gemm_bytes.load(std::memory_order_relaxed);
  out.gemm_seconds = c.gemm_seconds.load(std::memory_order_relaxed);
  out.gemm_calls = c.gemm_calls.load(std::memory_order_relaxed);
  out.gemm_simd_calls = c.gemm_simd_calls.load(std::memory_order_relaxed);
  out.elem_flops = c.elem_flops.load(std::memory_order_relaxed);
  out.elem_bytes = c.elem_bytes.load(std::memory_order_relaxed);
  out.elem_calls = c.elem_calls.load(std::memory_order_relaxed);
  out.elem_simd_calls = c.elem_simd_calls.load(std::memory_order_relaxed);
  return out;
}

KernelCounters KernelCountersDelta(const KernelCounters& before,
                                   const KernelCounters& after) {
  KernelCounters out;
  out.gemm_flops = after.gemm_flops - before.gemm_flops;
  out.gemm_bytes = after.gemm_bytes - before.gemm_bytes;
  out.gemm_seconds = after.gemm_seconds - before.gemm_seconds;
  out.gemm_calls = after.gemm_calls - before.gemm_calls;
  out.gemm_simd_calls = after.gemm_simd_calls - before.gemm_simd_calls;
  out.elem_flops = after.elem_flops - before.elem_flops;
  out.elem_bytes = after.elem_bytes - before.elem_bytes;
  out.elem_calls = after.elem_calls - before.elem_calls;
  out.elem_simd_calls = after.elem_simd_calls - before.elem_simd_calls;
  return out;
}

namespace kernel_stats_internal {

void AddGemm(double flops, double bytes, double seconds, bool simd) {
  AtomicCounters& c = Counters();
  AtomicAdd(c.gemm_flops, flops);
  AtomicAdd(c.gemm_bytes, bytes);
  AtomicAdd(c.gemm_seconds, seconds);
  c.gemm_calls.fetch_add(1, std::memory_order_relaxed);
  if (simd) c.gemm_simd_calls.fetch_add(1, std::memory_order_relaxed);
}

void AddElem(double flops, double bytes, bool simd) {
  AtomicCounters& c = Counters();
  AtomicAdd(c.elem_flops, flops);
  AtomicAdd(c.elem_bytes, bytes);
  c.elem_calls.fetch_add(1, std::memory_order_relaxed);
  if (simd) c.elem_simd_calls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace kernel_stats_internal

}  // namespace matopt
