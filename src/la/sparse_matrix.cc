#include "la/sparse_matrix.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "common/buffer_pool.h"

namespace matopt {

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense) {
  SparseMatrix out(dense.rows(), dense.cols());
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      double v = dense(r, c);
      if (v != 0.0) {
        out.col_idx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[r + 1] = static_cast<int64_t>(out.values_.size());
  }
  return out;
}

SparseMatrix SparseMatrix::FromTriples(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, double>> triples) {
  std::sort(triples.begin(), triples.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });
  SparseMatrix out(rows, cols);
  int64_t current_row = 0;
  int64_t last_r = -1;
  int64_t last_c = -1;
  for (const auto& [r, c, v] : triples) {
    if (r == last_r && c == last_c) {
      out.values_.back() += v;  // merge duplicate coordinate
      continue;
    }
    while (current_row < r) {
      out.row_ptr_[current_row + 1] = static_cast<int64_t>(out.values_.size());
      ++current_row;
    }
    out.col_idx_.push_back(c);
    out.values_.push_back(v);
    last_r = r;
    last_c = c;
  }
  while (current_row < rows) {
    out.row_ptr_[current_row + 1] = static_cast<int64_t>(out.values_.size());
    ++current_row;
  }
  return out;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      out(r, col_idx_[i]) = values_[i];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowSlice(int64_t r0, int64_t nr) const {
  nr = std::min(nr, rows_ - r0);
  SparseMatrix out;
  out.rows_ = nr;
  out.cols_ = cols_;
  BufferPool& pool = BufferPool::Default();
  int64_t base = row_ptr_[r0];
  const int64_t count = row_ptr_[r0 + nr] - base;
  out.row_ptr_ = pool.AcquireIndexZeroed(nr + 1);
  for (int64_t r = 0; r < nr; ++r) {
    out.row_ptr_[r + 1] = row_ptr_[r0 + r + 1] - base;
  }
  out.col_idx_ = pool.AcquireIndexEmpty(count);
  out.col_idx_.assign(col_idx_.begin() + base,
                      col_idx_.begin() + row_ptr_[r0 + nr]);
  out.values_ = pool.AcquireEmpty(count);
  out.values_.assign(values_.begin() + base,
                     values_.begin() + row_ptr_[r0 + nr]);
  return out;
}

SparseMatrix SparseMatrix::ColSlice(int64_t c0, int64_t nc) const {
  nc = std::min(nc, cols_ - c0);
  SparseMatrix out;
  out.rows_ = rows_;
  out.cols_ = nc;
  BufferPool& pool = BufferPool::Default();
  out.row_ptr_ = pool.AcquireIndexZeroed(rows_ + 1);
  // nnz() is an upper bound on the slice's entry count; reserving it lets
  // a recycled buffer absorb the push_back fill without reallocating.
  out.col_idx_ = pool.AcquireIndexEmpty(nnz());
  out.values_ = pool.AcquireEmpty(nnz());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      int64_t c = col_idx_[i];
      if (c >= c0 && c < c0 + nc) {
        out.col_idx_.push_back(c - c0);
        out.values_.push_back(values_[i]);
      }
    }
    out.row_ptr_[r + 1] = static_cast<int64_t>(out.values_.size());
  }
  return out;
}

void SparseMatrix::Recycle() {
  BufferPool& pool = BufferPool::Default();
  pool.Release(std::move(row_ptr_));
  pool.Release(std::move(col_idx_));
  pool.Release(std::move(values_));
  row_ptr_.assign(1, 0);
  col_idx_.clear();
  values_.clear();
  rows_ = 0;
  cols_ = 0;
}

namespace {

template <typename Out>
void SpMmAccumulateImpl(const SparseMatrix& a, const DenseMatrix& b, Out* c) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    double* out_row = c->row(r);
    for (int64_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      double v = a.values()[i];
      const double* b_row = b.row(a.col_idx()[i]);
      for (int64_t j = 0; j < b.cols(); ++j) out_row[j] += v * b_row[j];
    }
  }
}

}  // namespace

void SpMmAccumulate(const SparseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c) {
  SpMmAccumulateImpl(a, b, c);
}

void SpMmAccumulate(const SparseMatrix& a, const DenseMatrix& b,
                    DenseBlockView c) {
  SpMmAccumulateImpl(a, b, &c);
}

DenseMatrix SpMm(const SparseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  SpMmAccumulate(a, b, &out);
  return out;
}

SparseMatrix SpAdd(const SparseMatrix& a, const SparseMatrix& b) {
  std::vector<std::tuple<int64_t, int64_t, double>> triples;
  triples.reserve(a.nnz() + b.nnz());
  for (const SparseMatrix* m : {&a, &b}) {
    for (int64_t r = 0; r < m->rows(); ++r) {
      for (int64_t i = m->row_ptr()[r]; i < m->row_ptr()[r + 1]; ++i) {
        triples.emplace_back(r, m->col_idx()[i], m->values()[i]);
      }
    }
  }
  return SparseMatrix::FromTriples(a.rows(), a.cols(), std::move(triples));
}

}  // namespace matopt
