#ifndef MATOPT_LA_KERNEL_STATS_H_
#define MATOPT_LA_KERNEL_STATS_H_

#include <cstdint>

namespace matopt {

/// Process-wide counters of the *measured* work the local LA kernels
/// performed: useful flops (shape-derived, path-independent), the bytes a
/// kernel must stream assuming cold operands, and wall-clock seconds
/// inside the GEMM hot path. The executor snapshots these around every
/// stage to report per-stage arithmetic intensity and achieved FLOPS
/// (DESIGN.md §13) — the roofline view next to the cost model's simulated
/// flops.
///
/// flop/byte/call tallies are shape-derived and identical on every kernel
/// path (scalar or SIMD, any thread count); `gemm_seconds` is wall-clock
/// and observability-only, like the BufferPool counters.
struct KernelCounters {
  double gemm_flops = 0.0;    // 2*m*k*n per GemmAccumulate
  double gemm_bytes = 0.0;    // A + B read, C read+written
  double gemm_seconds = 0.0;  // wall-clock inside GemmAccumulate
  int64_t gemm_calls = 0;
  int64_t gemm_simd_calls = 0;  // calls that took the vectorized path
  double elem_flops = 0.0;      // element-wise map/zip/epilogue flops
  double elem_bytes = 0.0;
  int64_t elem_calls = 0;
  int64_t elem_simd_calls = 0;
};

/// Monotonic snapshot of the process-wide tallies.
KernelCounters KernelCountersSnapshot();

/// Difference of two snapshots (after - before), for per-stage deltas.
KernelCounters KernelCountersDelta(const KernelCounters& before,
                                   const KernelCounters& after);

/// Internal tally hooks used by the kernels.
namespace kernel_stats_internal {
void AddGemm(double flops, double bytes, double seconds, bool simd);
void AddElem(double flops, double bytes, bool simd);
}  // namespace kernel_stats_internal

}  // namespace matopt

#endif  // MATOPT_LA_KERNEL_STATS_H_
