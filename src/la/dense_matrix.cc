#include "la/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/buffer_pool.h"

namespace matopt {

DenseMatrix DenseMatrix::Pooled(int64_t rows, int64_t cols) {
  return DenseMatrix(rows, cols,
                     BufferPool::Default().AcquireZeroed(rows * cols));
}

void DenseMatrix::Recycle() {
  BufferPool::Default().Release(std::move(data_));
  data_.clear();
  rows_ = 0;
  cols_ = 0;
}

DenseBlockView DenseMatrix::MutableBlock(int64_t r0, int64_t c0, int64_t nr,
                                         int64_t nc) {
  DenseBlockView view;
  view.data = data_.data() + r0 * cols_ + c0;
  view.rows = std::min(nr, rows_ - r0);
  view.cols = std::min(nc, cols_ - c0);
  view.stride = cols_;
  return view;
}

DenseMatrix DenseMatrix::Block(int64_t r0, int64_t c0, int64_t nr,
                               int64_t nc) const {
  nr = std::min(nr, rows_ - r0);
  nc = std::min(nc, cols_ - c0);
  DenseMatrix out(nr, nc);
  for (int64_t r = 0; r < nr; ++r) {
    const double* src = row(r0 + r) + c0;
    std::copy(src, src + nc, out.row(r));
  }
  return out;
}

void DenseMatrix::SetBlock(int64_t r0, int64_t c0, const DenseMatrix& block) {
  for (int64_t r = 0; r < block.rows(); ++r) {
    std::copy(block.row(r), block.row(r) + block.cols(), row(r0 + r) + c0);
  }
}

double DenseMatrix::Sparsity() const {
  if (size() == 0) return 0.0;
  int64_t nnz = 0;
  for (double v : data_) nnz += (v != 0.0);
  return static_cast<double>(nnz) / static_cast<double>(size());
}

bool AllClose(const DenseMatrix& a, const DenseMatrix& b, double rtol,
              double atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    double x = a.data()[i];
    double y = b.data()[i];
    if (std::abs(x - y) > atol + rtol * std::abs(y)) return false;
  }
  return true;
}

}  // namespace matopt
