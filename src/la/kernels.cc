#include "la/kernels.h"

#include <algorithm>
#include <cmath>

namespace matopt {

namespace {

template <typename F>
DenseMatrix ZipWith(const DenseMatrix& a, const DenseMatrix& b, F f) {
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    out.data()[i] = f(a.data()[i], b.data()[i]);
  }
  return out;
}

template <typename F>
DenseMatrix MapWith(const DenseMatrix& a, F f) {
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out.data()[i] = f(a.data()[i]);
  return out;
}

}  // namespace

void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c) {
  // i-k-j loop order: streams over B's rows with unit stride.
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    double* c_row = c->row(i);
    const double* a_row = a.row(i);
    for (int64_t p = 0; p < k; ++p) {
      double av = a_row[p];
      if (av == 0.0) continue;
      const double* b_row = b.row(p);
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

DenseMatrix Gemm(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  GemmAccumulate(a, b, &out);
  return out;
}

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipWith(a, b, [](double x, double y) { return x + y; });
}

DenseMatrix Sub(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipWith(a, b, [](double x, double y) { return x - y; });
}

DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipWith(a, b, [](double x, double y) { return x * y; });
}

DenseMatrix ElemDiv(const DenseMatrix& a, const DenseMatrix& b) {
  return ZipWith(a, b, [](double x, double y) { return x / y; });
}

DenseMatrix ScalarMul(const DenseMatrix& a, double s) {
  return MapWith(a, [s](double x) { return s * x; });
}

DenseMatrix Transpose(const DenseMatrix& a) {
  DenseMatrix out(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

DenseMatrix Relu(const DenseMatrix& a) {
  return MapWith(a, [](double x) { return x > 0.0 ? x : 0.0; });
}

DenseMatrix ReluGrad(const DenseMatrix& z, const DenseMatrix& upstream) {
  return ZipWith(upstream, z,
                 [](double up, double zz) { return zz > 0.0 ? up : 0.0; });
}

DenseMatrix Softmax(const DenseMatrix& a) {
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* in = a.row(r);
    double* o = out.row(r);
    double mx = *std::max_element(in, in + a.cols());
    double sum = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int64_t c = 0; c < a.cols(); ++c) o[c] /= sum;
  }
  return out;
}

DenseMatrix Sigmoid(const DenseMatrix& a) {
  return MapWith(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}

DenseMatrix Exp(const DenseMatrix& a) {
  return MapWith(a, [](double x) { return std::exp(x); });
}

DenseMatrix RowSum(const DenseMatrix& a) {
  DenseMatrix out(a.rows(), 1);
  for (int64_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < a.cols(); ++c) s += a(r, c);
    out(r, 0) = s;
  }
  return out;
}

DenseMatrix ColSum(const DenseMatrix& a) {
  DenseMatrix out(1, a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(0, c) += a(r, c);
  }
  return out;
}

DenseMatrix BroadcastRowAdd(const DenseMatrix& a, const DenseMatrix& vec) {
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out(r, c) = a(r, c) + vec(0, c);
  }
  return out;
}

Result<DenseMatrix> Inverse(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Inverse requires a square matrix");
  }
  const int64_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;

  // LU decomposition with partial pivoting, applied in place.
  for (int64_t k = 0; k < n; ++k) {
    int64_t pivot = k;
    double best = std::abs(lu(k, k));
    for (int64_t r = k + 1; r < n; ++r) {
      if (std::abs(lu(r, k)) > best) {
        best = std::abs(lu(r, k));
        pivot = r;
      }
    }
    if (best == 0.0) {
      return Status::InvalidArgument("Inverse of a singular matrix");
    }
    if (pivot != k) {
      for (int64_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
    }
    for (int64_t r = k + 1; r < n; ++r) {
      lu(r, k) /= lu(k, k);
      double f = lu(r, k);
      if (f == 0.0) continue;
      for (int64_t c = k + 1; c < n; ++c) lu(r, c) -= f * lu(k, c);
    }
  }

  // Solve LU x = P e_j for each unit vector.
  DenseMatrix out(n, n);
  std::vector<double> y(n);
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < n; ++i) y[i] = (perm[i] == j) ? 1.0 : 0.0;
    for (int64_t i = 0; i < n; ++i) {       // forward substitution (L)
      for (int64_t c = 0; c < i; ++c) y[i] -= lu(i, c) * y[c];
    }
    for (int64_t i = n - 1; i >= 0; --i) {  // back substitution (U)
      for (int64_t c = i + 1; c < n; ++c) y[i] -= lu(i, c) * y[c];
      y[i] /= lu(i, i);
    }
    for (int64_t i = 0; i < n; ++i) out(i, j) = y[i];
  }
  return out;
}

DenseMatrix Identity(int64_t n) {
  DenseMatrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

}  // namespace matopt
