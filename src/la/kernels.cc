#include "la/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "la/kernel_grain.h"
#include "la/kernel_stats.h"
#include "la/kernels_simd.h"
#include "la/simd.h"

namespace matopt {

namespace {

/// See SetKernelFaultDelta: non-zero only inside the fuzz meta-test.
std::atomic<double> g_kernel_fault_delta{0.0};

}  // namespace

void SetKernelFaultDelta(double delta) {
  g_kernel_fault_delta.store(delta, std::memory_order_relaxed);
}

double KernelFaultDelta() {
  return g_kernel_fault_delta.load(std::memory_order_relaxed);
}

namespace {

// Grain policy (kParallelFlopThreshold, kElemGrain, RowGrain, GemmRowGrain)
// lives in la/kernel_grain.h; every grain depends only on the shape, so
// partitioning is bit-identical at every thread count.

/// Rows of B kept hot per pass of the scalar blocked Gemm inner loops.
constexpr int64_t kGemmKBlock = 256;

/// Below this flop count the blocked SIMD GEMM's packing overhead is not
/// worth it and the scalar kernel runs; both paths are bit-identical, so
/// the threshold is a pure performance knob.
constexpr int64_t kSimdGemmMinFlops = 1 << 14;

template <typename F>
void MapWithInto(const DenseMatrix& a, DenseMatrix* out, F f) {
  const double* pa = a.data();
  double* po = out->data();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i]);
  });
}

template <typename F>
DenseMatrix MapWith(const DenseMatrix& a, F f) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  MapWithInto(a, &out, f);
  return out;
}

/// C[r0:r1) += A[r0:r1) * B with the i-k-j loop order (unit-stride streams
/// over B's rows), k-blocked so a kGemmKBlock-row panel of B is reused
/// across the whole row range. Ascending k within ascending k-blocks keeps
/// every c(i, j) accumulation in exactly the seed kernel's order.
/// `skip_zeros` re-enables the zero-skip for mostly-zero left operands;
/// the dense path stays branch-free so the j loop vectorizes.
template <bool skip_zeros, typename Out>
void GemmAccumulateRows(const DenseMatrix& a, const DenseMatrix& b, Out* c,
                        int64_t r0, int64_t r1) {
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t kb = 0; kb < k; kb += kGemmKBlock) {
    const int64_t ke = std::min(k, kb + kGemmKBlock);
    for (int64_t i = r0; i < r1; ++i) {
      double* c_row = c->row(i);
      const double* a_row = a.row(i);
      for (int64_t p = kb; p < ke; ++p) {
        const double av = a_row[p];
        if constexpr (skip_zeros) {
          if (av == 0.0) continue;
        }
        const double* b_row = b.row(p);
        for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }
}

inline double* OutData(DenseMatrix* c) { return c->data(); }
inline int64_t OutStride(const DenseMatrix* c) { return c->cols(); }
inline double* OutData(DenseBlockView* c) { return c->data; }
inline int64_t OutStride(const DenseBlockView* c) { return c->stride; }

/// Returns true when the vectorized blocked path ran (for the roofline
/// counters); either path writes bit-identical output.
template <typename Out>
bool GemmAccumulateImpl(const DenseMatrix& a, const DenseMatrix& b, Out* c) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  const double flops = 2.0 * static_cast<double>(m) * k * n;

  // The zero-skip only pays when the lhs is mostly zeros (e.g. relu
  // output fed through a dense layout); for dense inputs the branch-free
  // inner loop vectorizes. Sample at most 4096 strided entries: small
  // repeated GEMMs stop paying a full O(mk) pass, and either branch
  // produces bit-identical results so a flipped decision is harmless.
  bool skip_zeros = false;
  const int64_t total = m * k;
  if (total > 0) {
    const int64_t samples = std::min<int64_t>(total, 4096);
    const int64_t stride = total / samples;
    int64_t zeros = 0;
    const double* pa = a.data();
    for (int64_t s = 0; s < samples; ++s) zeros += (pa[s * stride] == 0.0);
    skip_zeros = zeros * 8 > samples * 7;  // > 87.5% zeros
  }

  // Mostly-dense, wide-enough problems go to the cache-blocked AVX2
  // microkernels; the zero-skip path keeps its scalar branchy loop (the
  // skip destroys the dense column streams the microkernel relies on).
  if (!skip_zeros && m > 0 && n >= 8 && flops >= kSimdGemmMinFlops &&
      SimdEnabled()) {
    simdk::GemmAccumulateBlocked(a, b, OutData(c), OutStride(c));
    return true;
  }

  auto run_rows = [&](int64_t r0, int64_t r1) {
    if (skip_zeros) {
      GemmAccumulateRows<true>(a, b, c, r0, r1);
    } else {
      GemmAccumulateRows<false>(a, b, c, r0, r1);
    }
  };
  if (flops < kParallelFlopThreshold) {
    run_rows(0, m);
    return false;
  }
  ParallelFor(0, m, GemmRowGrain(m, k, n), run_rows);
  return false;
}

/// Shape-derived roofline tally shared by the GemmAccumulate overloads:
/// 2mkn useful flops, cold-operand traffic of A + B reads and a C
/// read+write (the accumulate), and the wall-clock the call took.
void CountGemm(const DenseMatrix& a, const DenseMatrix& b, double seconds,
               bool simd) {
  const double m = static_cast<double>(a.rows());
  const double k = static_cast<double>(a.cols());
  const double n = static_cast<double>(b.cols());
  kernel_stats_internal::AddGemm(2.0 * m * k * n,
                                 8.0 * (m * k + k * n + 2.0 * m * n), seconds,
                                 simd);
}

}  // namespace

void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c) {
  Stopwatch sw;
  const bool simd = GemmAccumulateImpl(a, b, c);
  CountGemm(a, b, sw.ElapsedSeconds(), simd);
  const double fault = KernelFaultDelta();
  if (fault != 0.0 && a.rows() > 0 && b.cols() > 0) c->row(0)[0] += fault;
}

void GemmAccumulate(const DenseMatrix& a, const DenseMatrix& b,
                    DenseBlockView c) {
  Stopwatch sw;
  const bool simd = GemmAccumulateImpl(a, b, &c);
  CountGemm(a, b, sw.ElapsedSeconds(), simd);
  const double fault = KernelFaultDelta();
  if (fault != 0.0 && a.rows() > 0 && b.cols() > 0) c.row(0)[0] += fault;
}

DenseMatrix Gemm(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), b.cols());
  GemmAccumulate(a, b, &out);
  return out;
}

namespace {

constexpr auto kAddOp = [](double x, double y) { return x + y; };
constexpr auto kSubOp = [](double x, double y) { return x - y; };
constexpr auto kMulOp = [](double x, double y) { return x * y; };
constexpr auto kDivOp = [](double x, double y) { return x / y; };
constexpr auto kReluGradOp = [](double up, double zz) {
  return zz > 0.0 ? up : 0.0;
};
constexpr auto kReluOp = [](double x) { return x > 0.0 ? x : 0.0; };
constexpr auto kSigmoidOp = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
constexpr auto kExpOp = [](double x) { return std::exp(x); };

/// Element-wise zip with SIMD dispatch: identical ParallelFor chunking on
/// both paths, and every vector op is IEEE-exact per element, so the two
/// paths are bit-identical. Tallies one flop and three streamed doubles
/// per element for the roofline counters.
template <typename F>
void ZipDispatch(simdk::ZipKind kind, const DenseMatrix& a,
                 const DenseMatrix& b, DenseMatrix* out, F f) {
  const bool simd = SimdEnabled();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out->data();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    if (simd) {
      simdk::ZipRange(kind, pa + i0, pb + i0, po + i0, i1 - i0);
    } else {
      for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i], pb[i]);
    }
  });
  kernel_stats_internal::AddElem(static_cast<double>(a.size()),
                                 24.0 * static_cast<double>(a.size()), simd);
}

/// Element-wise map with SIMD dispatch; `s` is the kScalarMul scalar
/// (ignored by kRelu).
template <typename F>
void MapDispatch(simdk::MapKind kind, const DenseMatrix& a, double s,
                 DenseMatrix* out, F f) {
  const bool simd = SimdEnabled();
  const double* pa = a.data();
  double* po = out->data();
  ParallelFor(0, a.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
    if (simd) {
      simdk::MapRange(kind, pa + i0, s, po + i0, i1 - i0);
    } else {
      for (int64_t i = i0; i < i1; ++i) po[i] = f(pa[i]);
    }
  });
  kernel_stats_internal::AddElem(static_cast<double>(a.size()),
                                 16.0 * static_cast<double>(a.size()), simd);
}

/// Roofline tally for the kernels that stay scalar (transcendental maps,
/// reductions): flops are approximate "one per element per op" counts.
void CountScalarElem(double flops, double bytes) {
  kernel_stats_internal::AddElem(flops, bytes, /*simd=*/false);
}

}  // namespace

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  AddInto(a, b, &out);
  return out;
}

DenseMatrix Sub(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  SubInto(a, b, &out);
  return out;
}

DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  HadamardInto(a, b, &out);
  return out;
}

DenseMatrix ElemDiv(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  ElemDivInto(a, b, &out);
  return out;
}

DenseMatrix ScalarMul(const DenseMatrix& a, double s) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  ScalarMulInto(a, s, &out);
  return out;
}

void AddInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  ZipDispatch(simdk::ZipKind::kAdd, a, b, out, kAddOp);
}

void SubInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  ZipDispatch(simdk::ZipKind::kSub, a, b, out, kSubOp);
}

void HadamardInto(const DenseMatrix& a, const DenseMatrix& b,
                  DenseMatrix* out) {
  ZipDispatch(simdk::ZipKind::kMul, a, b, out, kMulOp);
}

void ElemDivInto(const DenseMatrix& a, const DenseMatrix& b,
                 DenseMatrix* out) {
  ZipDispatch(simdk::ZipKind::kDiv, a, b, out, kDivOp);
}

void ReluGradInto(const DenseMatrix& z, const DenseMatrix& upstream,
                  DenseMatrix* out) {
  ZipDispatch(simdk::ZipKind::kReluGrad, upstream, z, out, kReluGradOp);
}

void ScalarMulInto(const DenseMatrix& a, double s, DenseMatrix* out) {
  MapDispatch(simdk::MapKind::kScalarMul, a, s, out,
              [s](double x) { return x * s; });
}

void ReluInto(const DenseMatrix& a, DenseMatrix* out) {
  MapDispatch(simdk::MapKind::kRelu, a, 0.0, out, kReluOp);
}

void SigmoidInto(const DenseMatrix& a, DenseMatrix* out) {
  MapWithInto(a, out, kSigmoidOp);
  CountScalarElem(static_cast<double>(a.size()),
                  16.0 * static_cast<double>(a.size()));
}

void ExpInto(const DenseMatrix& a, DenseMatrix* out) {
  MapWithInto(a, out, kExpOp);
  CountScalarElem(static_cast<double>(a.size()),
                  16.0 * static_cast<double>(a.size()));
}

DenseMatrix Transpose(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  DenseMatrix out = DenseMatrix::Pooled(n, m);
  constexpr int64_t kTile = 64;
  // Tiled copy: both the read and the write touch at most a kTile-wide
  // stripe, keeping one side cache-resident. Parallel over row-tile bands.
  auto do_rows = [&](int64_t rb0, int64_t rb1) {
    for (int64_t rb = rb0; rb < rb1; rb += kTile) {
      const int64_t re = std::min(rb1, rb + kTile);
      for (int64_t cb = 0; cb < n; cb += kTile) {
        const int64_t ce = std::min(n, cb + kTile);
        for (int64_t r = rb; r < re; ++r) {
          for (int64_t c = cb; c < ce; ++c) out(c, r) = a(r, c);
        }
      }
    }
  };
  if (m * n < kParallelFlopThreshold) {
    do_rows(0, m);
  } else {
    int64_t grain =
        std::max<int64_t>(kTile, (kElemGrain / std::max<int64_t>(1, n) +
                                  kTile - 1) /
                                     kTile * kTile);
    ParallelFor(0, m, grain, do_rows);
  }
  return out;
}

DenseMatrix Relu(const DenseMatrix& a) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  ReluInto(a, &out);
  return out;
}

DenseMatrix ReluGrad(const DenseMatrix& z, const DenseMatrix& upstream) {
  DenseMatrix out = DenseMatrix::Pooled(z.rows(), z.cols());
  ReluGradInto(z, upstream, &out);
  return out;
}

void SoftmaxInto(const DenseMatrix& a, DenseMatrix* out) {
  const int64_t cols = a.cols();
  ParallelFor(0, a.rows(), RowGrain(a.rows(), cols),
              [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const double* in = a.row(r);
      double* o = out->row(r);
      double mx = *std::max_element(in, in + cols);
      double sum = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        o[c] = std::exp(in[c] - mx);
        sum += o[c];
      }
      for (int64_t c = 0; c < cols; ++c) o[c] /= sum;
    }
  });
  CountScalarElem(4.0 * static_cast<double>(a.size()),
                  16.0 * static_cast<double>(a.size()));
}

DenseMatrix Softmax(const DenseMatrix& a) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  SoftmaxInto(a, &out);
  return out;
}

DenseMatrix Sigmoid(const DenseMatrix& a) { return MapWith(a, kSigmoidOp); }

DenseMatrix Exp(const DenseMatrix& a) { return MapWith(a, kExpOp); }

DenseMatrix RowSum(const DenseMatrix& a) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), 1);
  const int64_t cols = a.cols();
  ParallelFor(0, a.rows(), RowGrain(a.rows(), cols),
              [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const double* in = a.row(r);
      double s = 0.0;
      for (int64_t c = 0; c < cols; ++c) s += in[c];
      out(r, 0) = s;
    }
  });
  CountScalarElem(static_cast<double>(a.size()),
                  8.0 * static_cast<double>(a.size()));
  return out;
}

DenseMatrix ColSum(const DenseMatrix& a) {
  DenseMatrix out = DenseMatrix::Pooled(1, a.cols());
  // Partitioned over disjoint column stripes; each column still
  // accumulates its rows in ascending order, matching the sequential sum.
  const int64_t rows = a.rows();
  int64_t grain = std::max<int64_t>(16, RowGrain(a.cols(), rows));
  ParallelFor(0, a.cols(), grain, [&](int64_t c0, int64_t c1) {
    double* o = out.row(0);
    for (int64_t r = 0; r < rows; ++r) {
      const double* in = a.row(r);
      for (int64_t c = c0; c < c1; ++c) o[c] += in[c];
    }
  });
  CountScalarElem(static_cast<double>(a.size()),
                  8.0 * static_cast<double>(a.size()));
  return out;
}

void BroadcastRowAddInto(const DenseMatrix& a, const DenseMatrix& vec,
                         DenseMatrix* out) {
  const int64_t cols = a.cols();
  const double* v = vec.row(0);
  const bool simd = SimdEnabled();
  ParallelFor(0, a.rows(), RowGrain(a.rows(), cols),
              [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const double* in = a.row(r);
      double* o = out->row(r);
      if (simd) {
        simdk::BiasRowRange(in, v, o, cols, /*relu=*/false);
      } else {
        for (int64_t c = 0; c < cols; ++c) o[c] = in[c] + v[c];
      }
    }
  });
  kernel_stats_internal::AddElem(static_cast<double>(a.size()),
                                 16.0 * static_cast<double>(a.size()), simd);
}

DenseMatrix BroadcastRowAdd(const DenseMatrix& a, const DenseMatrix& vec) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  BroadcastRowAddInto(a, vec, &out);
  return out;
}

void BiasReluInto(const DenseMatrix& a, const DenseMatrix& vec,
                  DenseMatrix* out) {
  const int64_t cols = a.cols();
  const double* v = vec.row(0);
  const bool simd = SimdEnabled();
  ParallelFor(0, a.rows(), RowGrain(a.rows(), cols),
              [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const double* in = a.row(r);
      double* o = out->row(r);
      if (simd) {
        simdk::BiasRowRange(in, v, o, cols, /*relu=*/true);
      } else {
        for (int64_t c = 0; c < cols; ++c) {
          const double s = in[c] + v[c];
          o[c] = s > 0.0 ? s : 0.0;
        }
      }
    }
  });
  kernel_stats_internal::AddElem(2.0 * static_cast<double>(a.size()),
                                 16.0 * static_cast<double>(a.size()), simd);
}

DenseMatrix BiasRelu(const DenseMatrix& a, const DenseMatrix& vec) {
  DenseMatrix out = DenseMatrix::Pooled(a.rows(), a.cols());
  BiasReluInto(a, vec, &out);
  return out;
}

void ReluGradHadamardInto(const DenseMatrix& z, const DenseMatrix& upstream,
                          const DenseMatrix& other, bool other_is_lhs,
                          DenseMatrix* out) {
  const double* pz = z.data();
  const double* pu = upstream.data();
  const double* po = other.data();
  double* pr = out->data();
  // t is materialized before the multiply so signed zeros and NaNs
  // propagate exactly as in the unfused Hadamard(ReluGrad(...), other).
  const bool simd = SimdEnabled();
  if (simd) {
    ParallelFor(0, z.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
      simdk::ReluGradHadamardRange(pz + i0, pu + i0, po + i0, pr + i0,
                                   i1 - i0, other_is_lhs);
    });
  } else if (other_is_lhs) {
    ParallelFor(0, z.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double t = pz[i] > 0.0 ? pu[i] : 0.0;
        pr[i] = po[i] * t;
      }
    });
  } else {
    ParallelFor(0, z.size(), kElemGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double t = pz[i] > 0.0 ? pu[i] : 0.0;
        pr[i] = t * po[i];
      }
    });
  }
  kernel_stats_internal::AddElem(2.0 * static_cast<double>(z.size()),
                                 32.0 * static_cast<double>(z.size()), simd);
}

DenseMatrix ReluGradHadamard(const DenseMatrix& z, const DenseMatrix& upstream,
                             const DenseMatrix& other, bool other_is_lhs) {
  DenseMatrix out = DenseMatrix::Pooled(z.rows(), z.cols());
  ReluGradHadamardInto(z, upstream, other, other_is_lhs, &out);
  return out;
}

Result<DenseMatrix> Inverse(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Inverse requires a square matrix");
  }
  const int64_t n = a.rows();
  DenseMatrix lu = a;
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;

  // LU decomposition with partial pivoting, applied in place. The rank-1
  // update below the pivot touches disjoint rows, so it partitions over
  // the pool without changing any per-row accumulation order.
  for (int64_t k = 0; k < n; ++k) {
    int64_t pivot = k;
    double best = std::abs(lu(k, k));
    for (int64_t r = k + 1; r < n; ++r) {
      if (std::abs(lu(r, k)) > best) {
        best = std::abs(lu(r, k));
        pivot = r;
      }
    }
    if (best == 0.0) {
      return Status::InvalidArgument("Inverse of a singular matrix");
    }
    if (pivot != k) {
      for (int64_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
    }
    auto eliminate = [&](int64_t r0, int64_t r1) {
      const double* pivot_row = lu.row(k);
      for (int64_t r = r0; r < r1; ++r) {
        double* row = lu.row(r);
        row[k] /= pivot_row[k];
        double f = row[k];
        if (f == 0.0) continue;
        for (int64_t c = k + 1; c < n; ++c) row[c] -= f * pivot_row[c];
      }
    };
    const int64_t tail = n - k - 1;
    if (tail * (tail + 1) < kParallelFlopThreshold) {
      eliminate(k + 1, n);
    } else {
      int64_t grain = std::max<int64_t>(
          8, kParallelFlopThreshold / (4 * std::max<int64_t>(1, tail)));
      ParallelFor(k + 1, n, grain, eliminate);
    }
  }

  // Solve LU x = P e_j for each unit vector; columns are independent.
  DenseMatrix out = DenseMatrix::Pooled(n, n);
  int64_t grain = std::max<int64_t>(
      1, kParallelFlopThreshold / std::max<int64_t>(1, 2 * n * n));
  ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
    std::vector<double> y(n);
    for (int64_t j = j0; j < j1; ++j) {
      for (int64_t i = 0; i < n; ++i) y[i] = (perm[i] == j) ? 1.0 : 0.0;
      for (int64_t i = 0; i < n; ++i) {       // forward substitution (L)
        for (int64_t c = 0; c < i; ++c) y[i] -= lu(i, c) * y[c];
      }
      for (int64_t i = n - 1; i >= 0; --i) {  // back substitution (U)
        for (int64_t c = i + 1; c < n; ++c) y[i] -= lu(i, c) * y[c];
        y[i] /= lu(i, i);
      }
      for (int64_t i = 0; i < n; ++i) out(i, j) = y[i];
    }
  });
  return out;
}

DenseMatrix Identity(int64_t n) {
  DenseMatrix out(n, n);
  for (int64_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

}  // namespace matopt
