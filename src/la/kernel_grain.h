#ifndef MATOPT_LA_KERNEL_GRAIN_H_
#define MATOPT_LA_KERNEL_GRAIN_H_

#include <algorithm>
#include <cstdint>

namespace matopt {

/// ParallelFor grain policy for the LA kernels. Every grain depends only
/// on the problem shape — never on the pool size — so chunk boundaries,
/// and therefore per-chunk accumulation, are identical at every thread
/// count (the determinism contract of common/thread_pool.h).

/// Work (flops or entries) below which a kernel stays on the calling
/// thread; above it the default pool partitions the output.
inline constexpr int64_t kParallelFlopThreshold = 1 << 18;
inline constexpr int64_t kElemGrain = 1 << 15;

/// Upper bound on the number of row chunks one kernel fans out. Each
/// chunk costs a pool dispatch (atomic claim + closure call); past a few
/// hundred chunks more parallelism is noise and the dispatch overhead is
/// measurable on wide matrices whose per-row grain collapses to 1.
inline constexpr int64_t kMaxRowChunks = 256;

/// Row block height of the cache-blocked GEMM: chunks are aligned to it
/// so no thread's range splits a packed A block.
inline constexpr int64_t kGemmRowBlock = 96;

/// Grain for partitioning `rows` row-units of `cols` elements each, so one
/// chunk carries ~kElemGrain entries but no more than kMaxRowChunks chunks
/// are created. Depends only on the shape.
inline int64_t RowGrain(int64_t rows, int64_t cols) {
  int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, cols));
  // Wide matrices (cols >= kElemGrain) used to degenerate to one chunk
  // per row; cap the fan-out so tall inputs don't pay rows/1 dispatches.
  int64_t min_grain = (rows + kMaxRowChunks - 1) / kMaxRowChunks;
  return std::max(grain, min_grain);
}

/// Grain for partitioning the m output rows of an m x k * k x n GEMM.
/// One chunk carries at least ~kParallelFlopThreshold/4 flops — and at
/// least a whole kGemmRowBlock, since the blocked kernel packs and
/// processes A in kGemmRowBlock-row blocks and a finer grain would make
/// every chunk re-pack a partial block. The seed policy derived the grain
/// from flops alone, which over-partitioned small-N tall matmuls (m huge,
/// n small => tiny per-row flops => grain of a few rows => tens of
/// thousands of dispatches).
inline int64_t GemmRowGrain(int64_t m, int64_t k, int64_t n) {
  int64_t flop_grain = std::max<int64_t>(
      1, kParallelFlopThreshold / std::max<int64_t>(1, 8 * k * n));
  int64_t min_grain = (m + kMaxRowChunks - 1) / kMaxRowChunks;
  return std::max({flop_grain, min_grain, kGemmRowBlock});
}

}  // namespace matopt

#endif  // MATOPT_LA_KERNEL_GRAIN_H_
