#ifndef MATOPT_LA_SPARSE_MATRIX_H_
#define MATOPT_LA_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"

namespace matopt {

/// Compressed-sparse-row matrix of doubles. Sparse physical layouts
/// (SpSingleCsr, SpRowStripsCsr, SpCoo, ...) store one SparseMatrix per
/// tuple; COO layouts are represented as CSR in memory but costed as
/// (row, col, value) triples.
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0), row_ptr_{0} {}
  SparseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  static SparseMatrix FromDense(const DenseMatrix& dense);

  /// Builds a CSR matrix from unsorted COO triples. Duplicate coordinates
  /// are summed.
  static SparseMatrix FromTriples(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, double>> triples);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  double Sparsity() const {
    int64_t total = rows_ * cols_;
    return total == 0 ? 0.0 : static_cast<double>(nnz()) / total;
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  DenseMatrix ToDense() const;

  /// Returns a copy with every stored value multiplied by `s`.
  SparseMatrix Scaled(double s) const {
    SparseMatrix out = *this;
    for (double& v : out.values_) v *= s;
    return out;
  }

  /// Extracts rows [r0, r0+nr) as a CSR matrix (used to chunk sparse
  /// matrices into row strips).
  SparseMatrix RowSlice(int64_t r0, int64_t nr) const;

  /// Extracts columns [c0, c0+nc) (used for sparse column strips; this is a
  /// CSC-flavored slice but stored as CSR of the slice).
  SparseMatrix ColSlice(int64_t c0, int64_t nc) const;

  /// Returns the CSR arrays to the BufferPool and leaves the matrix empty.
  /// Call only on matrices about to be destroyed (e.g. per-tile slices).
  void Recycle();

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

/// C += A_sparse * B_dense. B must have A.cols() rows.
void SpMmAccumulate(const SparseMatrix& a, const DenseMatrix& b,
                    DenseMatrix* c);

/// C_view += A_sparse * B_dense, accumulating straight into a block view
/// of the caller's buffer. Same loop order as the DenseMatrix* overload.
void SpMmAccumulate(const SparseMatrix& a, const DenseMatrix& b,
                    DenseBlockView c);

/// Returns A_sparse * B_dense.
DenseMatrix SpMm(const SparseMatrix& a, const DenseMatrix& b);

/// Element-wise sum of two CSR matrices with identical shape.
SparseMatrix SpAdd(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace matopt

#endif  // MATOPT_LA_SPARSE_MATRIX_H_
