#ifndef MATOPT_COMMON_THREAD_POOL_H_
#define MATOPT_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace matopt {

/// Reusable worker pool with a deterministic data-parallel primitive.
///
/// The determinism contract: `ParallelFor(begin, end, grain, fn)` splits
/// [begin, end) into fixed chunks of `grain` iterations whose boundaries
/// depend only on (begin, end, grain) — never on the pool size or on
/// scheduling. Callers that keep per-chunk accumulators and merge them in
/// chunk-index order therefore produce bit-identical results at every
/// thread count, including the sequential pool (1 thread), which runs the
/// very same chunked code inline.
///
/// Nested ParallelFor calls issued from inside a chunk run inline on the
/// calling thread, so kernels that use the pool internally (e.g. Gemm)
/// stay safe when invoked from an already-parallel region.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: a pool of size N spawns N-1
  /// workers and the ParallelFor caller participates. Sizes < 1 clamp to 1
  /// (fully sequential, no worker threads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Applies fn(i0, i1) to every chunk [i0, i1) of [begin, end). `grain`
  /// must be positive; chunk c covers [begin + c*grain,
  /// min(begin + (c+1)*grain, end)). Blocks until every chunk finished.
  /// Exceptions thrown by fn are rethrown on the calling thread (first
  /// one wins; remaining chunks still run).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide default pool, created on first use with
  /// DefaultThreads() threads. All library hot paths draw from it.
  static ThreadPool& Default();

  /// Replaces the default pool with one of `num_threads` threads
  /// (`num_threads` <= 0 restores the DefaultThreads() sizing). Intended
  /// for benchmarks and tests sweeping thread counts; must not race with
  /// concurrent ParallelFor calls on the default pool.
  static void SetDefaultThreads(int num_threads);

  /// Pool size the default pool starts with: the MATOPT_THREADS
  /// environment variable when set (1 forces fully deterministic
  /// sequential execution), otherwise std::thread::hardware_concurrency().
  static int DefaultThreads();

 private:
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // guarded by mu
  };

  void WorkerLoop();
  static void RunChunks(Job& job);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::Default().ParallelFor.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace matopt

#endif  // MATOPT_COMMON_THREAD_POOL_H_
