#include "common/buffer_pool.h"

#include <cstdlib>
#include <mutex>
#include <utility>

namespace matopt {
namespace {

// Buffers smaller than this are cheaper to malloc than to manage.
constexpr int64_t kMinPoolElems = 1024;
// Size classes cover [2^0, 2^kNumClasses) element counts.
constexpr int kNumClasses = 40;
// Per-thread fast-path list length per class. Kept short: the executor's
// recycling is mostly cross-thread (the coordinating thread frees dead
// relations whose buffers the pool workers re-acquire for the next
// stage's outputs), so most capacity lives in the shared store.
constexpr int kMaxLocalPerClass = 4;
// Shared store capacity per class; overflow releases are simply freed.
constexpr int kMaxGlobalPerClass = 256;

int FloorLog2(uint64_t v) {
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

// Class of a request of n elements: smallest class whose buffers are
// guaranteed to have capacity >= n.
int RequestClass(int64_t n) {
  if (n <= 1) return 0;
  int c = FloorLog2(static_cast<uint64_t>(n - 1)) + 1;  // ceil(log2(n))
  return c < kNumClasses ? c : kNumClasses - 1;
}

// Class a buffer of the given capacity is filed under: largest class whose
// requests it can always serve.
int BufferClass(int64_t capacity) {
  int c = FloorLog2(static_cast<uint64_t>(capacity));  // floor(log2)
  return c < kNumClasses ? c : kNumClasses - 1;
}

// Capacity pool misses allocate for a request of n elements: rounded up to
// the class boundary so the buffer files back into the class it was
// requested from (otherwise a release/re-acquire of the same n could only
// ever hit for power-of-two sizes).
int64_t ClassCapacity(int64_t n, int cls) {
  if (cls >= kNumClasses - 1) return n;  // clamped top class
  const int64_t boundary = static_cast<int64_t>(1) << cls;
  return n > boundary ? n : boundary;
}

template <typename T>
struct FreeLists {
  std::vector<std::vector<T>> classes[kNumClasses];
};

template <typename T>
FreeLists<T>& LocalCache() {
  thread_local FreeLists<T> cache;
  return cache;
}

template <typename T>
struct SharedStore {
  std::mutex mu;
  FreeLists<T> lists;
};

template <typename T>
SharedStore<T>& GlobalStore() {
  static SharedStore<T> store;
  return store;
}

bool ReadEnabledEnv() {
  const char* env = std::getenv("MATOPT_POOL");
  return env == nullptr || env[0] != '0';
}

// -1 = no override (environment decides), 0 = forced off, 1 = forced on.
std::atomic<int> g_enabled_override{-1};

}  // namespace

BufferPool& BufferPool::Default() {
  static BufferPool pool;
  return pool;
}

bool BufferPool::Enabled() {
  const int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool enabled = ReadEnabledEnv();
  return enabled;
}

void BufferPool::OverrideEnabled(bool enabled) {
  g_enabled_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void BufferPool::ClearEnabledOverride() {
  g_enabled_override.store(-1, std::memory_order_relaxed);
}

void BufferPool::ClearThreadCache() {
  for (auto& list : LocalCache<double>().classes) list.clear();
  for (auto& list : LocalCache<int64_t>().classes) list.clear();
}

template <typename T>
std::vector<T> BufferPool::Acquire(int64_t n, bool zeroed) {
  if (Enabled() && n >= kMinPoolElems) {
    const int cls = RequestClass(n);
    auto& local = LocalCache<T>().classes[cls];
    std::vector<T> buf;
    bool found = false;
    if (!local.empty()) {
      buf = std::move(local.back());
      local.pop_back();
      found = true;
    } else {
      SharedStore<T>& store = GlobalStore<T>();
      std::lock_guard<std::mutex> lock(store.mu);
      auto& shared = store.lists.classes[cls];
      if (!shared.empty()) {
        buf = std::move(shared.back());
        shared.pop_back();
        found = true;
      }
    }
    if (found) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_recycled_.fetch_add(n * static_cast<int64_t>(sizeof(T)),
                                std::memory_order_relaxed);
      if (zeroed) {
        buf.assign(static_cast<size_t>(n), T{});
      } else {
        buf.clear();
      }
      return buf;
    }
    // Miss: allocate at the class boundary so this storage is eligible
    // for same-class requests once released.
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::vector<T> fresh;
    fresh.reserve(static_cast<size_t>(ClassCapacity(n, cls)));
    if (zeroed) fresh.assign(static_cast<size_t>(n), T{});
    return fresh;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (zeroed) return std::vector<T>(static_cast<size_t>(n), T{});
  std::vector<T> buf;
  buf.reserve(static_cast<size_t>(n));
  return buf;
}

template <typename T>
void BufferPool::ReleaseImpl(std::vector<T>&& buf) {
  releases_.fetch_add(1, std::memory_order_relaxed);
  const int64_t cap = static_cast<int64_t>(buf.capacity());
  if (!Enabled() || cap < kMinPoolElems) return;  // drop: freed here
  const int cls = BufferClass(cap);
  auto& local = LocalCache<T>().classes[cls];
  if (static_cast<int>(local.size()) < kMaxLocalPerClass) {
    local.push_back(std::move(buf));
    return;
  }
  SharedStore<T>& store = GlobalStore<T>();
  std::lock_guard<std::mutex> lock(store.mu);
  auto& shared = store.lists.classes[cls];
  if (static_cast<int>(shared.size()) < kMaxGlobalPerClass) {
    shared.push_back(std::move(buf));
  }
}

std::vector<double> BufferPool::AcquireZeroed(int64_t n) {
  return Acquire<double>(n, /*zeroed=*/true);
}

std::vector<double> BufferPool::AcquireEmpty(int64_t min_capacity) {
  return Acquire<double>(min_capacity, /*zeroed=*/false);
}

std::vector<int64_t> BufferPool::AcquireIndexZeroed(int64_t n) {
  return Acquire<int64_t>(n, /*zeroed=*/true);
}

std::vector<int64_t> BufferPool::AcquireIndexEmpty(int64_t min_capacity) {
  return Acquire<int64_t>(min_capacity, /*zeroed=*/false);
}

void BufferPool::Release(std::vector<double>&& buf) {
  ReleaseImpl(std::move(buf));
}

void BufferPool::Release(std::vector<int64_t>&& buf) {
  ReleaseImpl(std::move(buf));
}

BufferPool::Stats BufferPool::snapshot() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.bytes_recycled = bytes_recycled_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
  bytes_recycled_.store(0, std::memory_order_relaxed);
}

}  // namespace matopt
