#ifndef MATOPT_COMMON_BUFFER_POOL_H_
#define MATOPT_COMMON_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace matopt {

/// Size-class recycling pool for the numeric storage behind DenseMatrix
/// (std::vector<double>) and the CSR arrays behind SparseMatrix
/// (std::vector<int64_t>).
///
/// Two-level cache keyed by power-of-two size class: a per-thread free
/// list serves same-thread churn (e.g. a worker's per-tile slice buffers)
/// without locking, backed by a mutex-protected shared store so the
/// executor's steady state works across threads — the coordinating thread
/// frees dead relations and pool workers re-acquire that storage for the
/// next stage's outputs. Operations are per-buffer (one per tuple or
/// kernel), so the shared-store lock is far off any inner loop.
///
/// Determinism: recycling changes only *where* memory lives. AcquireZeroed
/// hands back an exactly-sized, zero-filled buffer (same observable state
/// as a fresh std::vector<double>(n, 0.0)), and AcquireEmpty hands back an
/// empty buffer with reserved capacity, so callers are bit-identical with
/// and without the pool. The hit/miss counters, by contrast, depend on
/// which pool thread ran which chunk and are observability only.
class BufferPool {
 public:
  /// Monotonic counters over the whole process (all threads).
  struct Stats {
    int64_t hits = 0;            // acquires served from a free list
    int64_t misses = 0;          // acquires that fell through to malloc
    int64_t releases = 0;        // buffers returned (cached or dropped)
    int64_t bytes_recycled = 0;  // bytes of requests served from cache
  };

  /// Process-wide pool instance.
  static BufferPool& Default();

  /// False when the MATOPT_POOL environment variable is set to 0: every
  /// acquire allocates fresh and every release frees (for A/B runs).
  static bool Enabled();

  /// Runtime override of Enabled(), taking precedence over the
  /// environment. Used by the fuzz oracles and tests to A/B the pool
  /// within one process; results must be bit-identical either way.
  static void OverrideEnabled(bool enabled);
  /// Restores environment-driven behaviour after OverrideEnabled.
  static void ClearEnabledOverride();

  /// Drops every buffer cached by the calling thread (tests; bounding
  /// memory between benchmark configurations).
  static void ClearThreadCache();

  /// Zero-filled buffer of exactly n elements (capacity may exceed n).
  std::vector<double> AcquireZeroed(int64_t n);
  /// Empty buffer with capacity >= min_capacity, for push_back fills.
  std::vector<double> AcquireEmpty(int64_t min_capacity);
  std::vector<int64_t> AcquireIndexZeroed(int64_t n);
  std::vector<int64_t> AcquireIndexEmpty(int64_t min_capacity);

  /// Returns a buffer's storage to the pool (thread-local list first,
  /// shared store on overflow). Buffers below the pooling threshold, or
  /// past both caps, are simply freed.
  void Release(std::vector<double>&& buf);
  void Release(std::vector<int64_t>&& buf);

  Stats snapshot() const;
  void ResetStats();

 private:
  BufferPool() = default;

  template <typename T>
  std::vector<T> Acquire(int64_t n, bool zeroed);
  template <typename T>
  void ReleaseImpl(std::vector<T>&& buf);

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> releases_{0};
  std::atomic<int64_t> bytes_recycled_{0};
};

}  // namespace matopt

#endif  // MATOPT_COMMON_BUFFER_POOL_H_
