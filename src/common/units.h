#ifndef MATOPT_COMMON_UNITS_H_
#define MATOPT_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace matopt {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Bytes of one double-precision matrix entry.
inline constexpr double kEntryBytes = 8.0;

/// Formats a duration in seconds like the paper's tables: H:MM:SS when at
/// least an hour, MM:SS otherwise.
std::string FormatHms(double seconds);

/// Formats seconds as MM:SS (used for the parenthesized optimization times).
std::string FormatMs(double seconds);

/// Formats a byte count with a binary-unit suffix, e.g. "1.5 GiB".
std::string FormatBytes(double bytes);

/// Formats a flop count with a decimal suffix, e.g. "2.15 Gflop".
std::string FormatFlops(double flops);

/// Formats a flop rate with a decimal suffix, e.g. "23.9 GFLOPS".
std::string FormatFlopRate(double flops_per_sec);

/// Formats an arithmetic intensity, e.g. "42.7 flop/B".
std::string FormatIntensity(double flops_per_byte);

}  // namespace matopt

#endif  // MATOPT_COMMON_UNITS_H_
