#ifndef MATOPT_COMMON_ENV_H_
#define MATOPT_COMMON_ENV_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace matopt {

/// Typed parsing of the MATOPT_* environment knobs.
///
/// Library call sites keep their historical lenient behaviour (an
/// unparseable value falls back to the default so a misconfigured shell
/// cannot crash an embedding process), but every CLI entry point — the
/// tools, the serve daemon, the bench binaries — calls ValidateMatoptEnv()
/// at startup and refuses to run with a typed error naming the offending
/// knob, instead of silently computing with a default the user did not ask
/// for.

/// Parses `text` as a strict boolean knob value: exactly "0" (off) or "1"
/// (on). The historical knob semantics treated any non-"0" first byte as
/// on, so "abc" silently enabled features; strict validation rejects it.
Result<bool> ParseEnvBool(const std::string& name, const std::string& text);

/// Parses `text` as an integer in [min_value, max_value]. Rejects empty
/// strings, trailing junk ("4x"), and out-of-range values with an
/// InvalidArgument naming the knob.
Result<int64_t> ParseEnvInt(const std::string& name, const std::string& text,
                            int64_t min_value, int64_t max_value);

/// One registered knob: its name, kind, and legal range (for integers).
struct EnvKnob {
  enum class Kind { kBool, kInt, kString };
  std::string name;
  Kind kind = Kind::kBool;
  int64_t min_value = 0;
  int64_t max_value = 0;
};

/// The full knob registry (README's environment table). Append-only.
const std::vector<EnvKnob>& MatoptEnvKnobs();

/// Validates every set MATOPT_* knob against the registry. Returns the
/// first violation as InvalidArgument naming the knob and its value, e.g.
///   "MATOPT_WORKERS=abc: expected an integer in [0, 4096]".
/// Unset knobs and registered string-valued knobs always pass; *unknown*
/// MATOPT_-prefixed variables in `extra_names` (callers pass environ-scans
/// when available) are not checked — the registry is the contract.
Status ValidateMatoptEnv();

/// Lenient integer read for library defaults: the knob's value when set
/// and parseable within [min_value, max_value], nullopt otherwise.
std::optional<int64_t> EnvIntOrNull(const char* name, int64_t min_value,
                                    int64_t max_value);

}  // namespace matopt

#endif  // MATOPT_COMMON_ENV_H_
