#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace matopt {

std::string FormatHms(double seconds) {
  if (seconds < 0) return "n/a";
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld",
                  static_cast<long long>(m), static_cast<long long>(s));
  }
  return buf;
}

std::string FormatMs(double seconds) {
  if (seconds < 0) return "n/a";
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld",
                static_cast<long long>(total / 60),
                static_cast<long long>(total % 60));
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (v >= kGiB) {
    v /= kGiB;
    suffix = "GiB";
  } else if (v >= kMiB) {
    v /= kMiB;
    suffix = "MiB";
  } else if (v >= kKiB) {
    v /= kKiB;
    suffix = "KiB";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix);
  return buf;
}

namespace {

/// Scales `v` by decimal (SI) magnitudes and renders "<value> <prefix><unit>"
/// with ~3 significant digits, in the style of roofline tooling.
std::string FormatSi(double v, const char* unit) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T", "P"};
  int mag = 0;
  while (v >= 1000.0 && mag < 5) {
    v /= 1000.0;
    ++mag;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), v >= 100.0 ? "%.0f %s%s" : "%.2f %s%s", v,
                kPrefixes[mag], unit);
  return buf;
}

}  // namespace

std::string FormatFlops(double flops) { return FormatSi(flops, "flop"); }

std::string FormatFlopRate(double flops_per_sec) {
  return FormatSi(flops_per_sec, "FLOPS");
}

std::string FormatIntensity(double flops_per_byte) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f flop/B", flops_per_byte);
  return buf;
}

}  // namespace matopt
