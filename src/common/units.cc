#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace matopt {

std::string FormatHms(double seconds) {
  if (seconds < 0) return "n/a";
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld",
                  static_cast<long long>(m), static_cast<long long>(s));
  }
  return buf;
}

std::string FormatMs(double seconds) {
  if (seconds < 0) return "n/a";
  int64_t total = static_cast<int64_t>(std::llround(seconds));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld",
                static_cast<long long>(total / 60),
                static_cast<long long>(total % 60));
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (v >= kGiB) {
    v /= kGiB;
    suffix = "GiB";
  } else if (v >= kMiB) {
    v /= kMiB;
    suffix = "MiB";
  } else if (v >= kKiB) {
    v /= kKiB;
    suffix = "KiB";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix);
  return buf;
}

}  // namespace matopt
