#ifndef MATOPT_COMMON_STATUS_H_
#define MATOPT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace matopt {

/// Error codes used across the library. Modeled on the Arrow/RocksDB idiom:
/// library entry points return Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kTypeError,       // compute-graph / annotation type errors (the paper's ⊥)
  kNotFound,
  kOutOfMemory,     // simulated worker memory / spill budget exceeded
  kTimeout,         // optimizer exceeded its time budget
  kInternal,
};

/// A success-or-error outcome. Cheap to copy on the success path.
/// [[nodiscard]]: silently dropping a Status hides failures — callers must
/// check, propagate, or explicitly ignore with a cast to void.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfMemory(std::string m) {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + std::string(": ") + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfMemory: return "OutOfMemory";
      case StatusCode::kTimeout: return "Timeout";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` must only be
/// called when `ok()` is true.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace matopt

/// Propagates a non-OK Status from an expression.
#define MATOPT_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::matopt::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Evaluates a Result<T> expression and either binds the value or returns
/// the error. Usage: MATOPT_ASSIGN_OR_RETURN(auto v, ComputeV());
#define MATOPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define MATOPT_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MATOPT_ASSIGN_OR_RETURN_NAME(a, b) MATOPT_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MATOPT_ASSIGN_OR_RETURN(lhs, expr) \
  MATOPT_ASSIGN_OR_RETURN_IMPL(            \
      MATOPT_ASSIGN_OR_RETURN_NAME(_matopt_result_, __LINE__), lhs, expr)

#endif  // MATOPT_COMMON_STATUS_H_
