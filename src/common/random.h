#ifndef MATOPT_COMMON_RANDOM_H_
#define MATOPT_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace matopt {

/// SplitMix64 mixing step (Steele et al.). Used to derive statistically
/// independent child seeds from one master seed: unlike ad-hoc arithmetic
/// such as `seed * 31 + i`, nearby (seed, stream) pairs never yield
/// correlated or colliding generator states.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Child seed for stream `stream` of master seed `seed`. Every random
/// choice in the fuzzing subsystem flows from one printed uint64 through
/// this function, so any iteration is replayable from that seed alone.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  return SplitMix64(seed ^ SplitMix64(stream));
}

/// Deterministic random source for data generators and tests. All
/// experiment data in this repository is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Standard normal sample (the paper generates dense inputs from N(0,1)).
  double Normal() { return normal_(gen_); }

  /// Uniform double in [0, 1).
  double Uniform() { return uniform_(gen_); }

  /// Uniform integer in [0, n). n < 1 yields 0 (a distribution over
  /// [0, n-1] with n < 1 would be undefined behavior).
  int64_t UniformInt(int64_t n) {
    if (n <= 1) return 0;
    return std::uniform_int_distribution<int64_t>(0, n - 1)(gen_);
  }

 private:
  std::mt19937_64 gen_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace matopt

#endif  // MATOPT_COMMON_RANDOM_H_
