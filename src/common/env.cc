#include "common/env.h"

#include <cerrno>
#include <cstdlib>

namespace matopt {

Result<bool> ParseEnvBool(const std::string& name, const std::string& text) {
  if (text == "0") return false;
  if (text == "1") return true;
  return Status::InvalidArgument(name + "=" + text +
                                 ": expected 0 or 1 for a boolean knob");
}

Result<int64_t> ParseEnvInt(const std::string& name, const std::string& text,
                            int64_t min_value, int64_t max_value) {
  auto fail = [&]() {
    return Status::InvalidArgument(
        name + "=" + text + ": expected an integer in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  };
  if (text.empty()) return fail();
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return fail();
  if (parsed < min_value || parsed > max_value) return fail();
  return static_cast<int64_t>(parsed);
}

const std::vector<EnvKnob>& MatoptEnvKnobs() {
  static const std::vector<EnvKnob> kKnobs = {
      {"MATOPT_THREADS", EnvKnob::Kind::kInt, 1, 1024},
      {"MATOPT_WORKERS", EnvKnob::Kind::kInt, 0, 4096},
      {"MATOPT_ZERO_COPY", EnvKnob::Kind::kBool, 0, 0},
      {"MATOPT_POOL", EnvKnob::Kind::kBool, 0, 0},
      {"MATOPT_SIMD", EnvKnob::Kind::kBool, 0, 0},
      {"MATOPT_FUSION", EnvKnob::Kind::kBool, 0, 0},
      {"MATOPT_REWRITE", EnvKnob::Kind::kBool, 0, 0},
      {"MATOPT_SERVE_CACHE_ENTRIES", EnvKnob::Kind::kInt, 1, 1 << 20},
      {"MATOPT_SERVE_SOCKET", EnvKnob::Kind::kString, 0, 0},
      {"MATOPT_BENCH_DIR", EnvKnob::Kind::kString, 0, 0},
  };
  return kKnobs;
}

Status ValidateMatoptEnv() {
  for (const EnvKnob& knob : MatoptEnvKnobs()) {
    const char* value = std::getenv(knob.name.c_str());
    if (value == nullptr) continue;
    switch (knob.kind) {
      case EnvKnob::Kind::kBool: {
        Result<bool> parsed = ParseEnvBool(knob.name, value);
        if (!parsed.ok()) return parsed.status();
        break;
      }
      case EnvKnob::Kind::kInt: {
        Result<int64_t> parsed =
            ParseEnvInt(knob.name, value, knob.min_value, knob.max_value);
        if (!parsed.ok()) return parsed.status();
        break;
      }
      case EnvKnob::Kind::kString:
        break;  // any value is legal (paths)
    }
  }
  return Status::OK();
}

std::optional<int64_t> EnvIntOrNull(const char* name, int64_t min_value,
                                    int64_t max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  Result<int64_t> parsed = ParseEnvInt(name, value, min_value, max_value);
  if (!parsed.ok()) return std::nullopt;
  return parsed.value();
}

}  // namespace matopt
