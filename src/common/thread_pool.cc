#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace matopt {

namespace {

/// Set while a thread is executing chunks of some ParallelFor, so nested
/// calls degrade to inline sequential execution instead of deadlocking on
/// the pool's own workers.
thread_local bool tls_in_parallel_region = false;

std::mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_pool;  // guarded by g_default_mu

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    RunChunks(*job);
  }
}

void ThreadPool::RunChunks(Job& job) {
  bool saved = tls_in_parallel_region;
  tls_in_parallel_region = true;
  for (;;) {
    int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    int64_t i0 = job.begin + c * job.grain;
    int64_t i1 = std::min(job.end, i0 + job.grain);
    try {
      (*job.fn)(i0, i1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.done_cv.notify_all();
    }
  }
  tls_in_parallel_region = saved;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain <= 0) grain = 1;
  int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Sequential pool, single chunk, or nested call: run inline through the
  // identical chunk boundaries so results cannot depend on the path taken.
  if (workers_.empty() || num_chunks == 1 || tls_in_parallel_region) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t i0 = begin + c * grain;
      fn(i0, std::min(end, i0 + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;

  int64_t helpers = std::min<int64_t>(static_cast<int64_t>(workers_.size()),
                                      num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) queue_.push_back(job);
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }

  RunChunks(*job);  // the caller participates
  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&] {
    return job->done_chunks.load(std::memory_order_acquire) ==
           job->num_chunks;
  });
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::Default() {
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (!g_default_pool) {
    g_default_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_default_pool;
}

void ThreadPool::SetDefaultThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  g_default_pool = std::make_unique<ThreadPool>(
      num_threads > 0 ? num_threads : DefaultThreads());
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("MATOPT_THREADS")) {
    int n = std::atoi(env);
    // Cap at a generous ceiling: an absurd value (say 1000000) would
    // otherwise exhaust the process thread limit at pool construction.
    if (n > 0) return std::min(n, 1024);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Default().ParallelFor(begin, end, grain, fn);
}

}  // namespace matopt
