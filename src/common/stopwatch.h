#ifndef MATOPT_COMMON_STOPWATCH_H_
#define MATOPT_COMMON_STOPWATCH_H_

#include <chrono>

namespace matopt {

/// Wall-clock stopwatch used to time the optimizer itself (the paper's
/// parenthesized "opt time" and the Figure 13 experiment).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace matopt

#endif  // MATOPT_COMMON_STOPWATCH_H_
