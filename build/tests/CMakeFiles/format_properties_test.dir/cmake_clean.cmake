file(REMOVE_RECURSE
  "CMakeFiles/format_properties_test.dir/format_properties_test.cc.o"
  "CMakeFiles/format_properties_test.dir/format_properties_test.cc.o.d"
  "format_properties_test"
  "format_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
