file(REMOVE_RECURSE
  "CMakeFiles/mla_programs_test.dir/mla_programs_test.cc.o"
  "CMakeFiles/mla_programs_test.dir/mla_programs_test.cc.o.d"
  "mla_programs_test"
  "mla_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mla_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
