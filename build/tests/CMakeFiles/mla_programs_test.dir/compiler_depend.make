# Empty compiler generated dependencies file for mla_programs_test.
# This may be replaced when dependencies are built.
