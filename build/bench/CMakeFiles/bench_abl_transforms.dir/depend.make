# Empty dependencies file for bench_abl_transforms.
# This may be replaced when dependencies are built.
