file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_transforms.dir/bench_abl_transforms.cc.o"
  "CMakeFiles/bench_abl_transforms.dir/bench_abl_transforms.cc.o.d"
  "bench_abl_transforms"
  "bench_abl_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
