# Empty compiler generated dependencies file for bench_fig08_experts.
# This may be replaced when dependencies are built.
