file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_experts.dir/bench_fig08_experts.cc.o"
  "CMakeFiles/bench_fig08_experts.dir/bench_fig08_experts.cc.o.d"
  "bench_fig08_experts"
  "bench_fig08_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
