# Empty dependencies file for bench_fig07_ffnn_workers.
# This may be replaced when dependencies are built.
