file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_ffnn_workers.dir/bench_fig07_ffnn_workers.cc.o"
  "CMakeFiles/bench_fig07_ffnn_workers.dir/bench_fig07_ffnn_workers.cc.o.d"
  "bench_fig07_ffnn_workers"
  "bench_fig07_ffnn_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_ffnn_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
