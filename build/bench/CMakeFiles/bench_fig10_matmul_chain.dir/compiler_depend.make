# Empty compiler generated dependencies file for bench_fig10_matmul_chain.
# This may be replaced when dependencies are built.
