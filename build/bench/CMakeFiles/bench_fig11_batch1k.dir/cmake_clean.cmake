file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_batch1k.dir/bench_fig11_batch1k.cc.o"
  "CMakeFiles/bench_fig11_batch1k.dir/bench_fig11_batch1k.cc.o.d"
  "bench_fig11_batch1k"
  "bench_fig11_batch1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_batch1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
