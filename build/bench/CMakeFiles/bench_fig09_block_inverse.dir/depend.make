# Empty dependencies file for bench_fig09_block_inverse.
# This may be replaced when dependencies are built.
