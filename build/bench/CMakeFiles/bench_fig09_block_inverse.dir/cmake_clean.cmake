file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_block_inverse.dir/bench_fig09_block_inverse.cc.o"
  "CMakeFiles/bench_fig09_block_inverse.dir/bench_fig09_block_inverse.cc.o.d"
  "bench_fig09_block_inverse"
  "bench_fig09_block_inverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_block_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
