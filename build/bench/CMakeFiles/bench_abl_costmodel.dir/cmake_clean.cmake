file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_costmodel.dir/bench_abl_costmodel.cc.o"
  "CMakeFiles/bench_abl_costmodel.dir/bench_abl_costmodel.cc.o.d"
  "bench_abl_costmodel"
  "bench_abl_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
