# Empty compiler generated dependencies file for bench_fig05_ffnn_full.
# This may be replaced when dependencies are built.
