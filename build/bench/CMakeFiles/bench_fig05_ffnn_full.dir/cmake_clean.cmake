file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_ffnn_full.dir/bench_fig05_ffnn_full.cc.o"
  "CMakeFiles/bench_fig05_ffnn_full.dir/bench_fig05_ffnn_full.cc.o.d"
  "bench_fig05_ffnn_full"
  "bench_fig05_ffnn_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_ffnn_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
