# Empty dependencies file for bench_fig06_ffnn_layersize.
# This may be replaced when dependencies are built.
