file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_ffnn_layersize.dir/bench_fig06_ffnn_layersize.cc.o"
  "CMakeFiles/bench_fig06_ffnn_layersize.dir/bench_fig06_ffnn_layersize.cc.o.d"
  "bench_fig06_ffnn_layersize"
  "bench_fig06_ffnn_layersize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_ffnn_layersize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
