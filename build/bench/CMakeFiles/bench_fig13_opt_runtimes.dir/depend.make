# Empty dependencies file for bench_fig13_opt_runtimes.
# This may be replaced when dependencies are built.
