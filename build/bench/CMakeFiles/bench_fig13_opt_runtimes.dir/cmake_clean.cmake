file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_opt_runtimes.dir/bench_fig13_opt_runtimes.cc.o"
  "CMakeFiles/bench_fig13_opt_runtimes.dir/bench_fig13_opt_runtimes.cc.o.d"
  "bench_fig13_opt_runtimes"
  "bench_fig13_opt_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_opt_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
