file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_batch10k.dir/bench_fig12_batch10k.cc.o"
  "CMakeFiles/bench_fig12_batch10k.dir/bench_fig12_batch10k.cc.o.d"
  "bench_fig12_batch10k"
  "bench_fig12_batch10k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_batch10k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
