# Empty compiler generated dependencies file for bench_fig12_batch10k.
# This may be replaced when dependencies are built.
