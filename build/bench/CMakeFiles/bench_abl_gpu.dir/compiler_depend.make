# Empty compiler generated dependencies file for bench_abl_gpu.
# This may be replaced when dependencies are built.
