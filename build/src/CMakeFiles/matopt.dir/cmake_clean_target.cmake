file(REMOVE_RECURSE
  "libmatopt.a"
)
