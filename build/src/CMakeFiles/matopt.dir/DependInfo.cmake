
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/all_tile_planner.cc" "src/CMakeFiles/matopt.dir/baselines/all_tile_planner.cc.o" "gcc" "src/CMakeFiles/matopt.dir/baselines/all_tile_planner.cc.o.d"
  "/root/repo/src/baselines/expert_planner.cc" "src/CMakeFiles/matopt.dir/baselines/expert_planner.cc.o" "gcc" "src/CMakeFiles/matopt.dir/baselines/expert_planner.cc.o.d"
  "/root/repo/src/baselines/personas.cc" "src/CMakeFiles/matopt.dir/baselines/personas.cc.o" "gcc" "src/CMakeFiles/matopt.dir/baselines/personas.cc.o.d"
  "/root/repo/src/baselines/pytorch_sim.cc" "src/CMakeFiles/matopt.dir/baselines/pytorch_sim.cc.o" "gcc" "src/CMakeFiles/matopt.dir/baselines/pytorch_sim.cc.o.d"
  "/root/repo/src/baselines/systemds_sim.cc" "src/CMakeFiles/matopt.dir/baselines/systemds_sim.cc.o" "gcc" "src/CMakeFiles/matopt.dir/baselines/systemds_sim.cc.o.d"
  "/root/repo/src/common/units.cc" "src/CMakeFiles/matopt.dir/common/units.cc.o" "gcc" "src/CMakeFiles/matopt.dir/common/units.cc.o.d"
  "/root/repo/src/core/cost/calibration.cc" "src/CMakeFiles/matopt.dir/core/cost/calibration.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/cost/calibration.cc.o.d"
  "/root/repo/src/core/cost/cost_model.cc" "src/CMakeFiles/matopt.dir/core/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/cost/cost_model.cc.o.d"
  "/root/repo/src/core/cost/sparsity.cc" "src/CMakeFiles/matopt.dir/core/cost/sparsity.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/cost/sparsity.cc.o.d"
  "/root/repo/src/core/format/format.cc" "src/CMakeFiles/matopt.dir/core/format/format.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/format/format.cc.o.d"
  "/root/repo/src/core/format/matrix_type.cc" "src/CMakeFiles/matopt.dir/core/format/matrix_type.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/format/matrix_type.cc.o.d"
  "/root/repo/src/core/graph/graph.cc" "src/CMakeFiles/matopt.dir/core/graph/graph.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/graph/graph.cc.o.d"
  "/root/repo/src/core/ops/catalog.cc" "src/CMakeFiles/matopt.dir/core/ops/catalog.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/ops/catalog.cc.o.d"
  "/root/repo/src/core/ops/features.cc" "src/CMakeFiles/matopt.dir/core/ops/features.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/ops/features.cc.o.d"
  "/root/repo/src/core/opt/annotation.cc" "src/CMakeFiles/matopt.dir/core/opt/annotation.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/opt/annotation.cc.o.d"
  "/root/repo/src/core/opt/brute_force.cc" "src/CMakeFiles/matopt.dir/core/opt/brute_force.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/opt/brute_force.cc.o.d"
  "/root/repo/src/core/opt/frontier.cc" "src/CMakeFiles/matopt.dir/core/opt/frontier.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/opt/frontier.cc.o.d"
  "/root/repo/src/core/opt/optimizer.cc" "src/CMakeFiles/matopt.dir/core/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/opt/optimizer.cc.o.d"
  "/root/repo/src/core/opt/tree_dp.cc" "src/CMakeFiles/matopt.dir/core/opt/tree_dp.cc.o" "gcc" "src/CMakeFiles/matopt.dir/core/opt/tree_dp.cc.o.d"
  "/root/repo/src/engine/cluster.cc" "src/CMakeFiles/matopt.dir/engine/cluster.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/cluster.cc.o.d"
  "/root/repo/src/engine/exec_stats.cc" "src/CMakeFiles/matopt.dir/engine/exec_stats.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/exec_stats.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/matopt.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/CMakeFiles/matopt.dir/engine/operators.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/operators.cc.o.d"
  "/root/repo/src/engine/relation.cc" "src/CMakeFiles/matopt.dir/engine/relation.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/relation.cc.o.d"
  "/root/repo/src/engine/reopt_executor.cc" "src/CMakeFiles/matopt.dir/engine/reopt_executor.cc.o" "gcc" "src/CMakeFiles/matopt.dir/engine/reopt_executor.cc.o.d"
  "/root/repo/src/frontend/parser.cc" "src/CMakeFiles/matopt.dir/frontend/parser.cc.o" "gcc" "src/CMakeFiles/matopt.dir/frontend/parser.cc.o.d"
  "/root/repo/src/frontend/sql_gen.cc" "src/CMakeFiles/matopt.dir/frontend/sql_gen.cc.o" "gcc" "src/CMakeFiles/matopt.dir/frontend/sql_gen.cc.o.d"
  "/root/repo/src/la/dense_matrix.cc" "src/CMakeFiles/matopt.dir/la/dense_matrix.cc.o" "gcc" "src/CMakeFiles/matopt.dir/la/dense_matrix.cc.o.d"
  "/root/repo/src/la/kernels.cc" "src/CMakeFiles/matopt.dir/la/kernels.cc.o" "gcc" "src/CMakeFiles/matopt.dir/la/kernels.cc.o.d"
  "/root/repo/src/la/sparse_matrix.cc" "src/CMakeFiles/matopt.dir/la/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/matopt.dir/la/sparse_matrix.cc.o.d"
  "/root/repo/src/ml/generators.cc" "src/CMakeFiles/matopt.dir/ml/generators.cc.o" "gcc" "src/CMakeFiles/matopt.dir/ml/generators.cc.o.d"
  "/root/repo/src/ml/workloads.cc" "src/CMakeFiles/matopt.dir/ml/workloads.cc.o" "gcc" "src/CMakeFiles/matopt.dir/ml/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
