# Empty dependencies file for matopt.
# This may be replaced when dependencies are built.
