# Empty compiler generated dependencies file for ffnn_training.
# This may be replaced when dependencies are built.
