file(REMOVE_RECURSE
  "CMakeFiles/ffnn_training.dir/ffnn_training.cpp.o"
  "CMakeFiles/ffnn_training.dir/ffnn_training.cpp.o.d"
  "ffnn_training"
  "ffnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
