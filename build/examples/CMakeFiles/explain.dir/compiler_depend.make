# Empty compiler generated dependencies file for explain.
# This may be replaced when dependencies are built.
