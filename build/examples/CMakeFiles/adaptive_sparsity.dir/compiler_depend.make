# Empty compiler generated dependencies file for adaptive_sparsity.
# This may be replaced when dependencies are built.
