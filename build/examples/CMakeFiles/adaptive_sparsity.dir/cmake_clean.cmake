file(REMOVE_RECURSE
  "CMakeFiles/adaptive_sparsity.dir/adaptive_sparsity.cpp.o"
  "CMakeFiles/adaptive_sparsity.dir/adaptive_sparsity.cpp.o.d"
  "adaptive_sparsity"
  "adaptive_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
