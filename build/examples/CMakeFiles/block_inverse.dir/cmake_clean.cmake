file(REMOVE_RECURSE
  "CMakeFiles/block_inverse.dir/block_inverse.cpp.o"
  "CMakeFiles/block_inverse.dir/block_inverse.cpp.o.d"
  "block_inverse"
  "block_inverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
