# Empty compiler generated dependencies file for block_inverse.
# This may be replaced when dependencies are built.
